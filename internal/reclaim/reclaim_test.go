package reclaim

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestRetireFreesAfterGrace(t *testing.T) {
	d := NewDomain[int]()
	var freed []int
	s := d.Register(func(v int) { freed = append(freed, v) })
	s.Pin()
	s.Retire(1)
	s.Retire(2)
	s.Unpin()
	if len(freed) != 0 {
		t.Fatal("freed before any epoch advance")
	}
	s.Flush()
	if len(freed) != 2 {
		t.Fatalf("freed %d values after flush, want 2", len(freed))
	}
}

func TestPinnedPeerBlocksFree(t *testing.T) {
	d := NewDomain[int]()
	var freed atomic.Int64
	s := d.Register(func(int) { freed.Add(1) })
	peer := d.Register(func(int) {})

	peer.Pin() // a concurrent operation holds references
	s.Pin()
	for i := 0; i < 10*scanInterval; i++ {
		s.Retire(i)
	}
	s.Unpin()
	s.Flush()
	if got := freed.Load(); got != 0 {
		t.Fatalf("%d values freed while a peer was pinned in an old epoch", got)
	}

	peer.Unpin()
	s.Flush()
	if got := freed.Load(); got != 10*scanInterval {
		t.Fatalf("freed %d values after peer unpinned, want %d", got, 10*scanInterval)
	}
}

func TestRepinUnblocksAdvance(t *testing.T) {
	d := NewDomain[int]()
	var freed atomic.Int64
	s := d.Register(func(int) { freed.Add(1) })
	peer := d.Register(func(int) {})

	peer.Pin()
	s.Pin()
	s.Retire(42)
	s.Unpin()
	// The peer finishes its operation and starts a new one: old epochs must
	// become collectable even though the peer is pinned again.
	peer.Unpin()
	peer.Pin()
	for i := 0; i < 6 && freed.Load() == 0; i++ {
		peer.Unpin()
		peer.Pin()
		s.Flush()
	}
	if freed.Load() != 1 {
		t.Fatal("value never freed despite peer making progress")
	}
	peer.Unpin()
}

func TestCloseUnblocksDomain(t *testing.T) {
	d := NewDomain[int]()
	var freed atomic.Int64
	s := d.Register(func(int) { freed.Add(1) })
	dead := d.Register(func(int) {})
	dead.Pin()
	dead.Close() // a worker exits mid-pin (Close implies it is done)

	s.Pin()
	s.Retire(7)
	s.Unpin()
	s.Flush()
	if freed.Load() != 1 {
		t.Fatal("closed slot still blocks epoch advancement")
	}
}

func TestEpochMonotonic(t *testing.T) {
	d := NewDomain[int]()
	s := d.Register(func(int) {})
	e0 := d.Epoch()
	s.Pin()
	for i := 0; i < 5*scanInterval; i++ {
		s.Retire(i)
	}
	s.Unpin()
	s.Flush()
	if d.Epoch() < e0 {
		t.Fatal("epoch went backwards")
	}
	if d.Epoch() == e0 {
		t.Fatal("epoch never advanced for an uncontended slot")
	}
}

// TestNoUseAfterFree hammers the protocol: writers retire integers that
// stand for nodes; a "node" may not be freed while any reader that could
// have observed it is still pinned. We model this with a shared published
// value: readers pin, read the current value, spin briefly, and verify the
// value was not freed before they unpin.
func TestNoUseAfterFree(t *testing.T) {
	d := NewDomain[uint64]()
	var current atomic.Uint64 // the "reachable" node
	// Values are never reused: each integer stands for a unique node, so a
	// set tombstone can only ever mean a genuine premature free.
	freedAt := make([]atomic.Bool, 1<<21)

	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Writer: replaces current and retires the old value.
	wg.Add(1)
	go func() {
		defer wg.Done()
		s := d.Register(func(v uint64) { freedAt[v].Store(true) })
		for i := uint64(1); i < uint64(len(freedAt)); i++ {
			select {
			case <-stop:
				return
			default:
			}
			s.Pin()
			old := current.Swap(i)
			s.Retire(old)
			s.Unpin()
		}
	}()

	var violations atomic.Int64
	var reads atomic.Int64
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := d.Register(func(uint64) {})
			for {
				select {
				case <-stop:
					return
				default:
				}
				s.Pin()
				v := current.Load()
				if freedAt[v].Load() {
					// Freed while we are pinned and it was reachable at
					// load time — a grace-period violation.
					violations.Add(1)
				}
				runtime.Gosched()
				if freedAt[v].Load() {
					violations.Add(1)
				}
				s.Unpin()
				reads.Add(1)
			}
		}()
	}
	for reads.Load() < 20000 {
		runtime.Gosched()
	}
	close(stop)
	wg.Wait()
	if violations.Load() != 0 {
		t.Fatalf("%d grace-period violations detected", violations.Load())
	}
}

func TestPendingAccounting(t *testing.T) {
	d := NewDomain[int]()
	s := d.Register(func(int) {})
	s.Pin()
	for i := 0; i < 10; i++ {
		s.Retire(i)
	}
	if s.Pending() != 10 {
		t.Fatalf("Pending = %d, want 10", s.Pending())
	}
	s.Unpin()
	s.Flush()
	if s.Pending() != 0 {
		t.Fatalf("Pending = %d after flush, want 0", s.Pending())
	}
}

func TestAdvanceAndFlushCounters(t *testing.T) {
	d := NewDomain[int]()
	if d.Advances() != 0 || d.Flushes() != 0 {
		t.Fatal("fresh domain reports progress")
	}
	s := d.Register(func(int) {})
	s.Pin()
	s.Retire(1)
	s.Unpin()
	s.Flush()
	if d.Flushes() == 0 {
		t.Fatal("Flush did not count")
	}
	if d.Advances() == 0 {
		t.Fatal("flush-driven epoch advance did not count")
	}
	if got := d.Epoch(); got == 0 {
		t.Fatalf("epoch did not move: %d", got)
	}
	before := d.Flushes()
	s.Flush()
	if d.Flushes() != before+1 {
		t.Fatalf("Flushes = %d, want %d", d.Flushes(), before+1)
	}
	s.Close()
}

func TestDomainClose(t *testing.T) {
	d := NewDomain[int]()
	var freed atomic.Int64
	a := d.Register(func(int) { freed.Add(1) })
	b := d.Register(func(int) { freed.Add(1) })
	a.Pin()
	a.Retire(1)
	a.Retire(2)
	a.Unpin()
	_ = b

	d.Close()
	if got := d.Slots(); got != 0 {
		t.Fatalf("Slots = %d after Domain.Close, want 0", got)
	}
	if freed.Load() != 2 {
		t.Fatalf("freed %d values during Close, want 2 (nothing pinned)", freed.Load())
	}
	// Idempotent, and harmless on already-closed slots.
	d.Close()
	a.Close()
	b.Close()
	if h := d.Health(); h.Slots != 0 || h.Pinned != 0 {
		t.Fatalf("Health after Close: %+v", h)
	}
}

// TestDomainCloseRacesSlotClose drives Domain.Close concurrently with each
// slot's own Close (the pooled-handle finalizer path): exactly one closer
// wins per slot, nothing double-flushes, nothing deadlocks.
func TestDomainCloseRacesSlotClose(t *testing.T) {
	for iter := 0; iter < 50; iter++ {
		d := NewDomain[int]()
		slots := make([]*Slot[int], 8)
		for i := range slots {
			slots[i] = d.Register(func(int) {})
			slots[i].Pin()
			slots[i].Retire(i)
			slots[i].Unpin()
		}
		var wg sync.WaitGroup
		wg.Add(len(slots) + 1)
		go func() { defer wg.Done(); d.Close() }()
		for _, s := range slots {
			go func(s *Slot[int]) { defer wg.Done(); s.Close() }(s)
		}
		wg.Wait()
		if got := d.Slots(); got != 0 {
			t.Fatalf("iter %d: Slots = %d after racing closes, want 0", iter, got)
		}
	}
}

// TestSlotCloseAdoptsOrphans pins one slot on an old epoch so a second
// slot's Close cannot free its retirees, closes that slot, then verifies
// the domain adopted the values and frees them — through the concurrency-
// safe orphan function — once the blocker unpins and the epoch advances.
// Without adoption this is the pooled-handle capacity leak: the slot is
// gone, its retirees stranded forever.
func TestSlotCloseAdoptsOrphans(t *testing.T) {
	d := NewDomain[int]()
	var orphaned atomic.Int64
	d.SetOrphanFree(func(int) { orphaned.Add(1) })

	blocker := d.Register(func(int) {})
	victim := d.Register(func(int) { t.Error("victim's own free ran; values should be orphaned") })

	blocker.Pin() // advertises the current epoch and never re-observes a newer one

	victim.Pin()
	victim.Retire(1)
	victim.Retire(2)
	victim.Retire(3)
	victim.Unpin()
	victim.Close() // Flush stalls on the blocker; buckets must be adopted

	if h := d.Health(); h.RetiredBacklog != 3 {
		t.Fatalf("RetiredBacklog = %d after adoption, want 3", h.RetiredBacklog)
	}
	if orphaned.Load() != 0 {
		t.Fatalf("orphans freed while blocker still pinned")
	}

	blocker.Unpin()
	// Any slot's advance attempt sweeps orphans; use a third slot to model
	// "whichever goroutine next advances the epoch".
	other := d.Register(func(int) {})
	for i := 0; i < 4 && orphaned.Load() < 3; i++ {
		other.Pin()
		other.Unpin()
		d.tryAdvance()
	}
	if orphaned.Load() != 3 {
		t.Fatalf("orphaned = %d after epoch advances, want 3", orphaned.Load())
	}
	if h := d.Health(); h.RetiredBacklog != 0 {
		t.Fatalf("RetiredBacklog = %d after orphan sweep, want 0", h.RetiredBacklog)
	}
	other.Close()
	blocker.Close()
}

// TestDomainCloseDrainsOrphans verifies the shutdown path: orphans adopted
// during slot closes are drained by Domain.Close itself once no slot can
// block epoch advancement.
func TestDomainCloseDrainsOrphans(t *testing.T) {
	d := NewDomain[int]()
	var orphaned atomic.Int64
	d.SetOrphanFree(func(int) { orphaned.Add(1) })

	blocker := d.Register(func(int) {})
	victim := d.Register(func(int) {})
	blocker.Pin()
	victim.Pin()
	victim.Retire(7)
	victim.Unpin()
	victim.Close()
	blocker.Unpin()
	blocker.Close()

	d.Close()
	if orphaned.Load() != 1 {
		t.Fatalf("orphaned = %d after Domain.Close, want 1", orphaned.Load())
	}
	if h := d.Health(); h.RetiredBacklog != 0 {
		t.Fatalf("RetiredBacklog = %d after Domain.Close, want 0", h.RetiredBacklog)
	}
}
