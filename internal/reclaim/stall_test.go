package reclaim

import (
	"testing"
	"time"
)

// TestStalledSlotDiagnostics: a pinned, never-unpinning slot must (a) never
// block another slot's Retire/Flush calls and (b) be reported by Health as
// stalled, with the retired backlog visibly frozen.
func TestStalledSlotDiagnostics(t *testing.T) {
	d := NewDomain[int]()
	freed := 0
	a := d.Register(func(int) { freed++ })
	b := d.Register(func(int) {})

	b.Pin() // the stalled reader: pins and never unpins

	// (a) The data-structure side never blocks: retiring and flushing from
	// another slot completes promptly even though nothing can be freed.
	done := make(chan struct{})
	go func() {
		a.Pin()
		for i := 0; i < 500; i++ {
			a.Retire(i)
		}
		a.Unpin()
		a.Flush()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Retire/Flush blocked behind a stalled reader")
	}

	// (b) Diagnostics: the stalled slot is pinned and lags the epoch (the
	// first advance can pass it; every later one cannot), and the backlog
	// is frozen at the full retired count.
	h := d.Health()
	if h.Slots != 2 || h.Pinned != 1 {
		t.Fatalf("Health = %+v, want 2 slots with 1 pinned", h)
	}
	if h.Stalled != 1 || h.MaxLag == 0 {
		t.Fatalf("stalled reader not reported: %+v", h)
	}
	if h.RetiredBacklog != 500 {
		t.Fatalf("RetiredBacklog = %d, want the frozen 500", h.RetiredBacklog)
	}
	if freed != 0 {
		t.Fatalf("%d values freed under a stalled reader's pin", freed)
	}

	// Once the reader unpins, flushing drains everything and the report
	// clears.
	b.Unpin()
	a.Flush()
	h = d.Health()
	if h.Stalled != 0 || h.Pinned != 0 {
		t.Fatalf("Health = %+v after unpin, want no stalled/pinned slots", h)
	}
	if h.RetiredBacklog != 0 || freed != 500 {
		t.Fatalf("backlog %d, freed %d after unpin+flush, want 0 and 500", h.RetiredBacklog, freed)
	}
}

// TestCloseWithPendingBacklog: closing a slot while a pinned peer freezes
// its retired backlog must not block, must not free anything early, and
// must leave the domain fully functional.
func TestCloseWithPendingBacklog(t *testing.T) {
	d := NewDomain[int]()
	freed := 0
	a := d.Register(func(int) { freed++ })
	b := d.Register(func(int) {})

	b.Pin()
	a.Pin()
	for i := 0; i < 100; i++ {
		a.Retire(i)
	}
	a.Unpin()

	done := make(chan struct{})
	go func() {
		a.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Close blocked behind a pinned peer")
	}
	if freed != 0 {
		t.Fatalf("Close freed %d values despite a pinned reader", freed)
	}
	if d.Slots() != 1 {
		t.Fatalf("Slots = %d after Close, want 1", d.Slots())
	}

	// The closed slot no longer blocks advancement: the survivor can
	// retire and free normally.
	b.Unpin()
	survivorFreed := 0
	c := d.Register(func(int) { survivorFreed++ })
	c.Pin()
	for i := 0; i < 10; i++ {
		c.Retire(i)
	}
	c.Unpin()
	c.Flush()
	if c.Pending() != 0 || survivorFreed != 10 {
		t.Fatalf("survivor pending=%d freed=%d after Close of a backlogged peer", c.Pending(), survivorFreed)
	}
}
