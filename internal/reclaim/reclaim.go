// Package reclaim implements epoch-based reclamation (EBR) for lock-free
// data structures.
//
// The paper defers memory reclamation to hazard pointers as future work and
// runs all experiments without reclamation; this package is the module's
// reclamation extension. It provides grace periods after which storage
// spliced out of a lock-free structure can be recycled — necessary for the
// arena-backed tree (internal/core), where reusing a node index too early
// would re-introduce the ABA problem the paper avoids by assuming unique
// addresses.
//
// # Protocol
//
// A Domain maintains a global epoch counter. Each participating goroutine
// owns a Slot. Operations bracket their structure accesses with Pin/Unpin;
// while pinned, a slot advertises the epoch it observed. Nodes unlinked
// from the structure are passed to Retire; they are handed to the slot's
// free function only after the global epoch has advanced twice past the
// retirement epoch, which guarantees every operation that could have held a
// reference has completed.
//
// The global epoch can only advance when every pinned slot has observed the
// current epoch, so a single stalled reader blocks recycling (the classic
// EBR trade-off) — but never blocks the data structure itself.
//
// # Stall diagnostics
//
// Because a stalled reader silently defeats reclamation (retired storage
// accumulates until the arena is exhausted), Domain.Health reports it:
// a pinned slot whose observed epoch trails the global epoch is provably
// the reason the epoch cannot advance, and with this protocol the lag is
// at most one epoch — freeing requires *two* advances past the retirement
// epoch, so any positive lag means the retired backlog is frozen.
// Operators should treat Health.Stalled > 0 with a growing RetiredBacklog
// as reclamation starvation and hunt the pinned goroutine.
package reclaim

import (
	"sync"
	"sync/atomic"

	"repro/internal/atomicx"
)

// scanInterval is how many Retire calls a slot batches before it attempts
// to advance the global epoch and free old buckets.
const scanInterval = 64

// Domain groups slots that share grace periods. Values of type T (node
// indices, pointers, ...) retired in one epoch are freed two epochs later.
type Domain[T any] struct {
	epoch atomic.Uint64
	_     [atomicx.CacheLine - 8]byte // keep the hot epoch word alone on its line

	// Telemetry: successful epoch advances and explicit Flush calls. Both
	// are off the operation hot path (advances happen once per
	// scanInterval retires at most), so plain atomic adds are fine.
	advances atomic.Uint64
	flushes  atomic.Uint64

	mu    sync.Mutex
	slots []*Slot[T]

	// Orphans are retired values adopted from closed slots that were still
	// inside their grace period (see Slot.Close). They are freed through
	// orphanFree — which, unlike a slot's free, must be safe for concurrent
	// use — once their grace period elapses, by whichever slot next
	// advances the epoch. Without SetOrphanFree they are dropped, never
	// freed: acceptable for GC-backed values, a permanent capacity leak
	// for arena indices.
	orphanMu    sync.Mutex
	orphans     []bucket[T]
	orphanCount atomic.Int64
	orphanFree  func(T)
}

// NewDomain creates a reclamation domain. Epoch numbering starts at 1 so
// that "epoch 0" can mean "never".
func NewDomain[T any]() *Domain[T] {
	d := &Domain[T]{}
	d.epoch.Store(1)
	return d
}

// SetOrphanFree installs the release function for values adopted from
// closed slots (handle churn: a slot that closes mid-grace-period hands
// its pending retirees to the domain instead of leaking them). free MUST
// be safe for concurrent use — it is called by whichever goroutine next
// advances the epoch, unlike a slot's own free which only ever runs on the
// owning goroutine. Call once, before any Slot.Close.
func (d *Domain[T]) SetOrphanFree(free func(T)) {
	d.orphanMu.Lock()
	d.orphanFree = free
	d.orphanMu.Unlock()
}

// Epoch returns the current global epoch (diagnostic).
func (d *Domain[T]) Epoch() uint64 { return d.epoch.Load() }

// Advances returns the cumulative number of successful global-epoch
// advances (telemetry; a stalled value under load means reclamation is
// blocked by a pinned slot).
func (d *Domain[T]) Advances() uint64 { return d.advances.Load() }

// Flushes returns the cumulative number of Slot.Flush calls on this domain
// (telemetry; the capacity-recovery path in internal/core flushes before
// each allocation retry).
func (d *Domain[T]) Flushes() uint64 { return d.flushes.Load() }

// Slots returns the number of registered, not-yet-closed slots
// (diagnostic).
func (d *Domain[T]) Slots() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.slots)
}

// Slot state word: localEpoch<<1 | activeBit. A dead slot stores deadState.
const (
	activeBit        = 1
	deadState uint64 = ^uint64(0)
)

// Slot is one goroutine's membership in a Domain. A Slot must not be used
// concurrently.
type Slot[T any] struct {
	d     *Domain[T]
	state atomic.Uint64
	_     [atomicx.CacheLine - 8]byte

	free      func(T) // receives values whose grace period has elapsed
	retired   [3]bucket[T]
	sinceScan int
	pending   atomic.Int64 // total items across buckets (diagnostic; read by Domain.Health)
}

type bucket[T any] struct {
	epoch uint64
	items []T
}

// Register creates a slot whose retired values are eventually passed to
// free. free runs on the goroutine that owns the slot (during Retire or
// Flush), never concurrently.
func (d *Domain[T]) Register(free func(T)) *Slot[T] {
	s := &Slot[T]{d: d, free: free}
	d.mu.Lock()
	d.slots = append(d.slots, s)
	d.mu.Unlock()
	return s
}

// Pin marks the start of a structure operation. Pairs with Unpin. While
// pinned, no value the goroutine can reach will be freed.
func (s *Slot[T]) Pin() {
	for {
		e := s.d.epoch.Load()
		s.state.Store(e<<1 | activeBit)
		// Go atomics are sequentially consistent, so once this re-check
		// passes, any epoch advance must have observed our pin.
		if s.d.epoch.Load() == e {
			return
		}
	}
}

// Unpin marks the end of a structure operation.
func (s *Slot[T]) Unpin() {
	s.state.Store(s.state.Load() &^ activeBit)
}

// Retire schedules v to be freed once no pinned operation can still hold a
// reference. May only be called while pinned.
func (s *Slot[T]) Retire(v T) {
	e := s.d.epoch.Load()
	b := &s.retired[e%3]
	if b.epoch != e {
		// This bucket last held items from epoch ≤ e-3; the global epoch is
		// already ≥ their epoch+2, so they are safe to free now.
		s.drain(b)
		b.epoch = e
	}
	b.items = append(b.items, v)
	s.pending.Add(1)
	s.sinceScan++
	if s.sinceScan >= scanInterval {
		s.sinceScan = 0
		s.tryAdvance()
		s.sweep()
	}
}

// drain frees everything in a bucket.
func (s *Slot[T]) drain(b *bucket[T]) {
	for i, v := range b.items {
		s.free(v)
		var zero T
		b.items[i] = zero
	}
	s.pending.Add(-int64(len(b.items)))
	b.items = b.items[:0]
}

// sweep frees buckets whose grace period has elapsed.
func (s *Slot[T]) sweep() {
	e := s.d.epoch.Load()
	for i := range s.retired {
		b := &s.retired[i]
		if b.epoch != 0 && b.epoch+2 <= e && len(b.items) > 0 {
			s.drain(b)
		}
	}
}

// tryAdvance bumps the global epoch if every active slot has observed it.
func (s *Slot[T]) tryAdvance() { s.d.tryAdvance() }

// tryAdvance bumps the global epoch if every active slot has observed it,
// then sweeps any adopted orphans whose grace period has elapsed.
func (d *Domain[T]) tryAdvance() {
	e := d.epoch.Load()
	d.mu.Lock()
	for _, other := range d.slots {
		st := other.state.Load()
		if st == deadState {
			continue
		}
		if st&activeBit != 0 && st>>1 != e {
			d.mu.Unlock()
			return
		}
	}
	d.mu.Unlock()
	if d.epoch.CompareAndSwap(e, e+1) {
		d.advances.Add(1)
	}
	if d.orphanCount.Load() > 0 {
		d.sweepOrphans()
	}
}

// sweepOrphans frees adopted buckets whose grace period has elapsed. Unlike
// a slot's sweep this can run on any goroutine; the bucket list is guarded
// by orphanMu, but orphanFree runs concurrently with live slots' own free
// calls, which is why it must be concurrency-safe.
func (d *Domain[T]) sweepOrphans() {
	e := d.epoch.Load()
	d.orphanMu.Lock()
	defer d.orphanMu.Unlock()
	kept := d.orphans[:0]
	for i := range d.orphans {
		b := &d.orphans[i]
		if b.epoch+2 <= e {
			for _, v := range b.items {
				d.orphanFree(v)
			}
			d.orphanCount.Add(-int64(len(b.items)))
			b.items = nil
		} else {
			kept = append(kept, *b)
		}
	}
	d.orphans = kept
}

// Pending returns how many retired values await freeing (diagnostic).
func (s *Slot[T]) Pending() int { return int(s.pending.Load()) }

// Flush aggressively tries to advance epochs and free everything retired by
// this slot. It spins until the slot's buckets are empty or progress stops
// because another slot is pinned. Call only while unpinned.
func (s *Slot[T]) Flush() {
	s.d.flushes.Add(1)
	for i := 0; i < 4 && s.pending.Load() > 0; i++ {
		s.tryAdvance()
		s.sweep()
	}
}

// Health is a point-in-time snapshot of a Domain's reclamation progress.
// Values are approximate under concurrent load but each field is read
// atomically.
type Health struct {
	Epoch          uint64 // current global epoch
	Slots          int    // registered, not-yet-closed slots
	Pinned         int    // slots currently inside a Pin/Unpin bracket
	Stalled        int    // pinned slots lagging the global epoch — they block advancement
	MaxLag         uint64 // largest epoch lag among pinned slots (≤1 under this protocol)
	RetiredBacklog int    // retired values (incl. adopted orphans) still awaiting their grace period
}

// Health reports the domain's reclamation state. A pinned slot that has not
// observed the current global epoch is counted as stalled: the epoch cannot
// advance past it, so every slot's retired backlog is frozen until it
// unpins. A backlog that keeps growing while Stalled > 0 is reclamation
// starvation and will eventually exhaust a bounded arena.
func (d *Domain[T]) Health() Health {
	h := Health{Epoch: d.epoch.Load()}
	h.RetiredBacklog = int(d.orphanCount.Load())
	d.mu.Lock()
	defer d.mu.Unlock()
	h.Slots = len(d.slots)
	for _, s := range d.slots {
		h.RetiredBacklog += int(s.pending.Load())
		st := s.state.Load()
		if st == deadState || st&activeBit == 0 {
			continue
		}
		h.Pinned++
		if obs := st >> 1; obs < h.Epoch {
			h.Stalled++
			if lag := h.Epoch - obs; lag > h.MaxLag {
				h.MaxLag = lag
			}
		}
	}
	return h
}

// Close permanently deactivates the slot so it never again blocks epoch
// advancement, then flushes what it can. Values still inside their grace
// period are handed to the domain as orphans (freed by a later epoch
// advance through the function installed with SetOrphanFree); without an
// orphan-free function they are dropped, never recycled. Idempotent: the
// atomic swap to deadState elects exactly one closer, so a handle finalizer
// racing Domain.Close touches nothing.
func (s *Slot[T]) Close() {
	if s.state.Swap(deadState) == deadState {
		return
	}
	// Dead slots are skipped by tryAdvance, so this flush can make
	// progress even though the slot itself no longer advertises an epoch.
	s.Flush()
	d := s.d
	if s.pending.Load() > 0 {
		// Another slot is pinned on an older epoch, so some buckets could
		// not be freed. Adopt them into the domain rather than leak them:
		// pooled-handle churn would otherwise permanently strand arena
		// capacity (see TestSlotCloseAdoptsOrphans).
		d.orphanMu.Lock()
		if d.orphanFree != nil {
			for i := range s.retired {
				b := &s.retired[i]
				if len(b.items) > 0 {
					d.orphans = append(d.orphans, bucket[T]{epoch: b.epoch, items: b.items})
					d.orphanCount.Add(int64(len(b.items)))
					b.items = nil
				}
			}
			s.pending.Store(0)
		}
		d.orphanMu.Unlock()
	}
	d.mu.Lock()
	for i, other := range d.slots {
		if other == s {
			d.slots[i] = d.slots[len(d.slots)-1]
			d.slots = d.slots[:len(d.slots)-1]
			break
		}
	}
	d.mu.Unlock()
}

// Close deactivates every slot still registered with the domain — the
// shutdown path for a structure being retired as a whole (e.g. a serving
// tree on drain). The domain must be quiescent: no slot may be pinned or
// concurrently operated by its owner. Safe to call more than once and
// concurrently with individual Slot.Close calls (each slot is closed
// exactly once). With no slots left to block advancement, any orphans
// adopted along the way are drained here.
func (d *Domain[T]) Close() {
	d.mu.Lock()
	slots := append([]*Slot[T](nil), d.slots...)
	d.mu.Unlock()
	for _, s := range slots {
		s.Close()
	}
	for i := 0; i < 4 && d.orphanCount.Load() > 0; i++ {
		d.tryAdvance()
	}
}
