package rtrace_test

// The throughput half of the tracing overhead gate (`make trace-overhead`,
// part of `make ci`): a fig4-smoke cell with a recorder installed but
// sampling off must stay within 1% of the untraced baseline. The
// allocation half (zero allocs on the sampled path) runs unconditionally
// in rtrace_test.go; this half drives real measurement cells, so it is
// opt-in via BST_TRACE_OVERHEAD=1 — wall-clock-heavy and load-sensitive,
// the wrong thing to run inside every `go test ./...`.

import (
	"os"
	"sort"
	"testing"
	"time"

	"repro/internal/harness"
	"repro/internal/rtrace"
	"repro/internal/workload"
)

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s[len(s)/2]
}

func TestTraceOverheadGate(t *testing.T) {
	if os.Getenv("BST_TRACE_OVERHEAD") == "" {
		t.Skip("set BST_TRACE_OVERHEAD=1 (or run `make trace-overhead`) to run the throughput gate")
	}
	nm, err := harness.TargetByName(harness.TargetNM)
	if err != nil {
		t.Fatal(err)
	}
	mix, err := workload.MixByName("mixed")
	if err != nil {
		t.Fatal(err)
	}
	base := harness.Config{
		Threads:  4,
		Duration: 150 * time.Millisecond,
		KeyRange: 100_000,
		Mix:      mix,
		Seed:     42,
		Prefill:  true,
	}
	measure := func(rec *rtrace.Recorder) float64 {
		c := base
		c.Trace = rec
		return harness.RunTarget(nm, c).Throughput()
	}

	// Interleaved A/B pairs, medians compared: interleaving cancels drift
	// (thermal, noisy neighbors), the median discards stragglers. A noisy
	// host gets two more attempts with larger samples before we fail.
	const want = 0.99
	var ratio float64
	for attempt, pairs := 0, 5; attempt < 3; attempt, pairs = attempt+1, pairs+4 {
		var off, on []float64
		for i := 0; i < pairs; i++ {
			off = append(off, measure(nil))
			// Recorder installed, SampleEvery 0: every request pays the
			// real disabled-path cost (conn registered, flag checks).
			on = append(on, measure(rtrace.New(rtrace.Options{})))
		}
		ratio = median(on) / median(off)
		t.Logf("attempt %d: untraced %.0f ops/s, recorder-off %.0f ops/s, ratio %.4f (%d pairs)",
			attempt+1, median(off), median(on), ratio, pairs)
		if ratio >= want {
			return
		}
	}
	t.Fatalf("tracing with sampling off costs %.2f%% throughput, budget is 1%%",
		(1-ratio)*100)
}
