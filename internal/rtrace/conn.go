package rtrace

import (
	"time"
)

// maxReqSpans bounds one request's span tree in the connection scratch
// buffer (root + children + events). Overflow drops spans, never blocks.
const maxReqSpans = 16

// Conn is one connection's view of the flight recorder: a fixed scratch
// buffer for the request in flight and a single-writer ring the finished
// tree is flushed into. The owning goroutine (the server's per-connection
// read loop, or a replication follower's apply loop) is the only writer;
// no method allocates. A nil *Conn is a no-op on every method, so the
// per-request cost with tracing disabled is one nil check.
//
// At most one sampled request is tracked at a time. Under pipelining a new
// sampled request arriving before the previous one's window flushed
// finishes the previous request early — its WAL/repl wait is then
// under-attributed, which the flight recorder accepts in exchange for a
// fixed-size, allocation-free hot path.
type Conn struct {
	r    *Recorder
	id   uint32
	ring *ring

	sctr uint64 // conn-local self-sample counter (single goroutine, no atomics)

	active bool
	cur    Context // TraceID + the request root's SpanID
	op     uint8
	key    int64
	start  int64
	n      int
	spans  [maxReqSpans]Span
}

// NewConn registers a connection with the recorder. Rings are recycled
// through a free list so spans of closed connections stay readable until
// the ring is reused. Returns nil (a no-op Conn) on a nil Recorder.
func (r *Recorder) NewConn() *Conn {
	if r == nil {
		return nil
	}
	c := &Conn{r: r, id: r.connCtr.Add(1)}
	r.mu.Lock()
	if n := len(r.free); n > 0 {
		c.ring = r.free[n-1]
		r.free = r.free[:n-1]
	} else {
		c.ring = newRing(connRingSize)
	}
	r.conns = append(r.conns, c)
	r.mu.Unlock()
	return c
}

// Close finishes any open request and returns the ring to the free list.
func (c *Conn) Close() {
	if c == nil {
		return
	}
	c.EndRequest()
	c.r.mu.Lock()
	for i, rc := range c.r.conns {
		if rc == c {
			c.r.conns[i] = c.r.conns[len(c.r.conns)-1]
			c.r.conns = c.r.conns[:len(c.r.conns)-1]
			break
		}
	}
	c.r.free = append(c.r.free, c.ring)
	c.r.mu.Unlock()
	c.ring = nil
}

// ID returns the connection's recorder-assigned ID (0 on nil).
func (c *Conn) ID() uint32 {
	if c == nil {
		return 0
	}
	return c.id
}

// StartRequest begins tracking a request and reports whether it is
// sampled. A request arriving with a sampled context is always recorded
// (the root span adopts the sender's span as parent); otherwise the
// connection self-samples every Options.SampleEvery-th request with a
// fresh trace ID.
func (c *Conn) StartRequest(tc Context, op uint8, key int64) bool {
	if c == nil {
		return false
	}
	if c.active {
		c.EndRequest()
	}
	var parent uint32
	switch {
	case tc.Sampled():
		parent = tc.SpanID
	case c.r.sampleEvery != 0:
		c.sctr++
		if c.sctr%c.r.sampleEvery != 0 {
			return false
		}
		tc = Context{TraceID: c.r.newTraceID(), Flags: FlagSampled}
	default:
		return false
	}
	c.active = true
	c.cur = Context{TraceID: tc.TraceID, SpanID: c.r.newSpanID(), Flags: FlagSampled}
	c.op = op
	c.key = key
	c.start = time.Now().UnixNano()
	c.n = 1 // slot 0 is reserved for the root, written by EndRequest
	c.spans[0] = Span{
		TraceID: c.cur.TraceID, SpanID: c.cur.SpanID, Parent: parent,
		Kind: KRequest, Op: op, Conn: c.id, Start: c.start, Arg: key,
	}
	return true
}

// Active reports whether a sampled request is being tracked.
func (c *Conn) Active() bool { return c != nil && c.active }

// Context returns the in-flight request's context — the identity shipped
// onward (to the WAL seq table, to followers) so downstream spans parent
// under this request's root.
func (c *Conn) Context() Context {
	if c == nil || !c.active {
		return Context{}
	}
	return c.cur
}

// Span records a child phase of the in-flight request covering
// [start, now). Dropped silently if no request is active or the scratch
// buffer is full.
func (c *Conn) Span(kind uint8, start time.Time, arg int64) {
	if c == nil || !c.active || c.n >= maxReqSpans {
		return
	}
	c.spans[c.n] = Span{
		TraceID: c.cur.TraceID, SpanID: c.r.newSpanID(), Parent: c.cur.SpanID,
		Kind: kind, Conn: c.id, Start: start.UnixNano(),
		Dur: time.Since(start).Nanoseconds(), Arg: arg,
	}
	c.n++
}

// Event records a zero-duration annotation on the in-flight request.
func (c *Conn) Event(kind uint8, arg int64) {
	if c == nil || !c.active || c.n >= maxReqSpans {
		return
	}
	c.spans[c.n] = Span{
		TraceID: c.cur.TraceID, SpanID: c.r.newSpanID(), Parent: c.cur.SpanID,
		Kind: kind, Conn: c.id, Start: time.Now().UnixNano(), Arg: arg,
	}
	c.n++
}

// EndRequest closes the in-flight request: stamps the root duration,
// flushes the tree to the connection ring, folds phase aggregates, and —
// if the request crossed the slow threshold — copies the tree into the
// slow-op log with its dominant phase.
func (c *Conn) EndRequest() {
	if c == nil || !c.active {
		return
	}
	c.active = false
	dur := time.Now().UnixNano() - c.start
	c.spans[0].Dur = dur
	for i := 0; i < c.n; i++ {
		c.ring.record(c.spans[i])
		c.r.phase(c.spans[i].Kind, c.spans[i].Dur)
	}
	if c.r.slowNanos > 0 && dur > c.r.slowNanos {
		c.r.addSlowOp(SlowOp{
			TraceID:  c.cur.TraceID,
			Op:       c.op,
			Key:      c.key,
			Start:    c.start,
			Dur:      dur,
			Dominant: dominantPhase(c.spans[:c.n], dur),
			Spans:    append([]Span(nil), c.spans[:c.n]...),
		})
	}
}

// dominantPhase names the longest instrumented phase of a request, or 0
// ("other") when un-instrumented time exceeds every phase.
func dominantPhase(spans []Span, total int64) uint8 {
	var sums [kMax]int64
	for _, sp := range spans {
		if sp.Kind != KRequest {
			sums[sp.Kind] += sp.Dur
		}
	}
	var best uint8
	var bestNS int64
	var accounted int64
	for k := uint8(1); k < kMax; k++ {
		accounted += sums[k]
		if sums[k] > bestNS {
			best, bestNS = k, sums[k]
		}
	}
	if total-accounted > bestNS {
		return 0
	}
	return best
}
