// Package rtrace is the cluster-wide request-tracing subsystem: a 16-byte
// trace context stamped by the client, carried in an optional extension of
// every wire frame, and threaded through server admission, tree execution,
// the group-commit WAL wait, replication ack wait, and follower apply — so
// one sampled write yields a linked span tree spanning processes.
//
// The design follows the paper's own discipline for telemetry: near-zero
// cost when off, allocation-free when on. Spans land in fixed-size
// lock-free ring buffers (a "flight recorder": overwrite-oldest, zero
// allocation on the record path); a disabled recorder is a nil pointer and
// every entry point is a nil-check no-op. Per-connection rings are
// single-writer (the connection goroutine owns them); a shared multi-writer
// ring absorbs "loose" spans from the client, the replication follower and
// the checkpointer, claimed by atomic fetch-add with per-slot publication
// stamps so readers detect torn slots instead of locking writers out.
//
// Requests that exceed a configurable latency threshold have their full
// span tree copied into a bounded slow-op log, tagged with the dominant
// phase (queue wait vs tree vs fsync vs repl ack) — the answer to "why was
// *this* request slow?" that counters cannot give.
package rtrace

import (
	"sync"
	"sync/atomic"
	"time"
)

// FlagSampled marks a context whose request should record spans.
const FlagSampled = 1

// Context is the wire-portable trace identity: which trace a request
// belongs to, which span is its parent on the sending side, and whether it
// is sampled. The zero Context means "no tracing".
type Context struct {
	TraceID uint64
	SpanID  uint32
	Flags   uint8
}

// Sampled reports whether the context asks for span recording.
func (c Context) Sampled() bool { return c.Flags&FlagSampled != 0 && c.TraceID != 0 }

// ContextLen is the encoded size of a Context: trace ID (8), span ID (4),
// flags (1), three reserved zero bytes. The reserved bytes keep the
// extension 8-byte-aligned for future fields without a format bump.
const ContextLen = 16

// AppendContext encodes c in the wire extension layout.
func AppendContext(dst []byte, c Context) []byte {
	return append(dst,
		byte(c.TraceID>>56), byte(c.TraceID>>48), byte(c.TraceID>>40), byte(c.TraceID>>32),
		byte(c.TraceID>>24), byte(c.TraceID>>16), byte(c.TraceID>>8), byte(c.TraceID),
		byte(c.SpanID>>24), byte(c.SpanID>>16), byte(c.SpanID>>8), byte(c.SpanID),
		c.Flags, 0, 0, 0)
}

// DecodeContext decodes a Context from b, which must hold at least
// ContextLen bytes.
func DecodeContext(b []byte) (Context, bool) {
	if len(b) < ContextLen {
		return Context{}, false
	}
	return Context{
		TraceID: uint64(b[0])<<56 | uint64(b[1])<<48 | uint64(b[2])<<40 | uint64(b[3])<<32 |
			uint64(b[4])<<24 | uint64(b[5])<<16 | uint64(b[6])<<8 | uint64(b[7]),
		SpanID: uint32(b[8])<<24 | uint32(b[9])<<16 | uint32(b[10])<<8 | uint32(b[11]),
		Flags:  b[12],
	}, true
}

// Span kinds. KRequest is the per-request root on the serving node; the
// phase kinds below it are its children; the K*Event kinds are
// zero-duration annotations (client-side hops, retries).
const (
	KRequest    = uint8(iota + 1) // server-side request root (wire op in Span.Op)
	KClientSend                   // client: whole round trip including retries
	KQueueWait                    // admission: waiting for an in-flight slot
	KTreeOp                       // the lock-free tree operation itself
	KWALWait                      // group-commit WAL append + fsync wait
	KReplWait                     // semi-sync wait for a follower ack
	KApply                        // follower: applying a shipped WAL batch
	KCheckpoint                   // snapshot write + publish
	KRedirect                     // event: client followed a NotLeader redirect
	KReplLag                      // event: read bounced with StatusReplLag
	KRetry                        // event: client retried after a retryable status
	kMax
)

var kindNames = [kMax]string{
	KRequest:    "request",
	KClientSend: "client_send",
	KQueueWait:  "queue_wait",
	KTreeOp:     "tree_op",
	KWALWait:    "wal_wait",
	KReplWait:   "repl_wait",
	KApply:      "apply",
	KCheckpoint: "checkpoint",
	KRedirect:   "redirect",
	KReplLag:    "repl_lag",
	KRetry:      "retry",
}

// KindName returns the export name of a span kind.
func KindName(k uint8) string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return "unknown"
}

// Span is one recorded interval (or, with Dur 0, an instantaneous event).
// Fixed-size and pointer-free so rings recycle slots without allocation.
type Span struct {
	TraceID uint64
	SpanID  uint32
	Parent  uint32 // 0 = root of this process's view
	Kind    uint8
	Op      uint8  // wire op for KRequest spans, else 0
	Conn    uint32 // recording connection ID, 0 for loose spans
	Start   int64  // unix nanoseconds
	Dur     int64  // nanoseconds, 0 for events
	Arg     int64  // kind-specific: key, WAL seq, hop count
}

// ring sizes must be powers of two. Per-connection rings are small (a
// connection's recent history); the shared ring absorbs every loose span
// in the process.
const (
	connRingSize   = 256
	sharedRingSize = 4096
)

// ring is a fixed-size overwrite-oldest span buffer. Writers claim a slot
// by fetch-add and publish it by storing claim+1 into the slot's stamp
// (0 while the write is in flight); readers copy the span and re-check the
// stamp, dropping the slot on a mismatch. Single-writer rings never tear;
// on the shared ring a writer lapped by a full ring of faster writers can
// race a slot, and the stamp protocol makes that a dropped sample rather
// than a lock.
type ring struct {
	slots []Span
	stamp []atomic.Uint64
	cur   atomic.Uint64
}

func newRing(size int) *ring {
	return &ring{slots: make([]Span, size), stamp: make([]atomic.Uint64, size)}
}

func (r *ring) record(sp Span) {
	i := r.cur.Add(1) - 1
	slot := i & uint64(len(r.slots)-1)
	r.stamp[slot].Store(0)
	r.slots[slot] = sp
	r.stamp[slot].Store(i + 1)
}

// snapshot appends every currently-published span to dst.
func (r *ring) snapshot(dst []Span) []Span {
	for i := range r.slots {
		s1 := r.stamp[i].Load()
		if s1 == 0 {
			continue
		}
		sp := r.slots[i]
		if r.stamp[i].Load() != s1 {
			continue // torn: a writer replaced the slot mid-copy
		}
		dst = append(dst, sp)
	}
	return dst
}

// SlowOp is one retained slow request: the root identity plus a copy of
// its full span tree, with the dominant phase already computed.
type SlowOp struct {
	TraceID  uint64
	Op       uint8
	Key      int64
	Start    int64 // unix nanoseconds
	Dur      int64 // nanoseconds
	Dominant uint8 // span kind of the longest phase; 0 = un-instrumented time dominated
	Spans    []Span
}

// DominantName names the dominant phase ("other" when un-instrumented time
// dominates the request).
func (s SlowOp) DominantName() string {
	if s.Dominant == 0 {
		return "other"
	}
	return KindName(s.Dominant)
}

const slowLogSize = 64

// seqTabSize bounds the sampled-seq table used to link WAL sequence
// numbers back to the request context that produced them (for attaching
// trace extensions to shipped replication batches).
const seqTabSize = 128

type seqEntry struct {
	seq uint64
	ctx Context
}

type phaseAgg struct {
	count atomic.Uint64
	nanos atomic.Uint64
}

// Options configures a Recorder.
type Options struct {
	// SampleEvery self-originates a sampled trace on every Nth request
	// that arrives without one. 0 records only requests already flagged
	// by the peer.
	SampleEvery int
	// SlowOp retains the span tree of any request slower than this in the
	// slow-op log. 0 disables the log.
	SlowOp time.Duration
}

// Recorder owns the process's flight recorder: the ring registry, the ID
// generator, the phase aggregates, the sampled-seq table and the slow-op
// log. A nil *Recorder disables everything; every method is nil-safe.
type Recorder struct {
	sampleEvery uint64
	slowNanos   int64

	sampleCtr atomic.Uint64
	idCtr     atomic.Uint64 // splitmix64 state: trace + span IDs
	connCtr   atomic.Uint32

	shared *ring

	mu    sync.Mutex
	conns []*Conn // every connection ever registered (rings are recycled)
	free  []*ring

	phases [kMax]phaseAgg

	slowMu   sync.Mutex
	slowOps  [slowLogSize]SlowOp
	slowLen  int
	slowNext int

	seqMu  sync.Mutex
	seqTab [seqTabSize]seqEntry
	seqLen int
	seqPos int
}

// New creates a Recorder. The ID stream is seeded from the clock so spans
// from distinct processes (leader, follower, client) cannot collide.
func New(opts Options) *Recorder {
	r := &Recorder{
		sampleEvery: uint64(max(opts.SampleEvery, 0)),
		slowNanos:   opts.SlowOp.Nanoseconds(),
		shared:      newRing(sharedRingSize),
	}
	r.idCtr.Store(uint64(time.Now().UnixNano()))
	return r
}

// splitmix64 is the ID mixer (same generator the client uses for backoff
// jitter): one atomic add plus a few multiplies, no locks.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	z := x
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (r *Recorder) newTraceID() uint64 {
	for {
		if id := splitmix64(r.idCtr.Add(0x9E3779B97F4A7C15)); id != 0 {
			return id
		}
	}
}

func (r *Recorder) newSpanID() uint32 {
	for {
		if id := uint32(splitmix64(r.idCtr.Add(0x9E3779B97F4A7C15))); id != 0 {
			return id
		}
	}
}

// SampleNext is the client-side origination point: on every Nth call (per
// Options.SampleEvery) it returns a fresh sampled Context; otherwise the
// zero Context. Cost when sampling is off: two loads.
func (r *Recorder) SampleNext() Context {
	if r == nil || r.sampleEvery == 0 {
		return Context{}
	}
	if r.sampleCtr.Add(1)%r.sampleEvery != 0 {
		return Context{}
	}
	return Context{TraceID: r.newTraceID(), SpanID: r.newSpanID(), Flags: FlagSampled}
}

// Record writes one loose span (client round trip, follower apply,
// checkpoint) to the shared ring and folds it into the phase aggregates.
// Zero allocation; safe from any goroutine.
func (r *Recorder) Record(sp Span) {
	if r == nil {
		return
	}
	r.shared.record(sp)
	r.phase(sp.Kind, sp.Dur)
}

// Span records a loose interval from start to now, parented under tc.
func (r *Recorder) Span(tc Context, kind uint8, start time.Time, arg int64) {
	if r == nil || !tc.Sampled() {
		return
	}
	r.Record(Span{
		TraceID: tc.TraceID, SpanID: r.newSpanID(), Parent: tc.SpanID,
		Kind: kind, Start: start.UnixNano(), Dur: time.Since(start).Nanoseconds(), Arg: arg,
	})
}

// Event records a loose zero-duration annotation parented under tc.
func (r *Recorder) Event(tc Context, kind uint8, arg int64) {
	if r == nil || !tc.Sampled() {
		return
	}
	r.Record(Span{
		TraceID: tc.TraceID, SpanID: r.newSpanID(), Parent: tc.SpanID,
		Kind: kind, Start: time.Now().UnixNano(), Arg: arg,
	})
}

func (r *Recorder) phase(kind uint8, dur int64) {
	if kind >= kMax {
		return
	}
	r.phases[kind].count.Add(1)
	r.phases[kind].nanos.Add(uint64(dur))
}

// PhaseSnapshot is the cumulative per-kind time accounting, the source of
// bstbench's per-cell phase-breakdown deltas.
type PhaseSnapshot struct {
	Count uint64
	Nanos uint64
}

// Phases returns the cumulative per-kind aggregates keyed by kind name.
func (r *Recorder) Phases() map[string]PhaseSnapshot {
	if r == nil {
		return nil
	}
	out := make(map[string]PhaseSnapshot, kMax)
	for k := uint8(1); k < kMax; k++ {
		c := r.phases[k].count.Load()
		if c == 0 {
			continue
		}
		out[KindName(k)] = PhaseSnapshot{Count: c, Nanos: r.phases[k].nanos.Load()}
	}
	return out
}

// NoteSampledSeq remembers that WAL sequence seq was produced by the
// sampled request tc, so the replication leader can attach the context to
// the shipped batch that covers it.
func (r *Recorder) NoteSampledSeq(seq uint64, tc Context) {
	if r == nil || !tc.Sampled() || seq == 0 {
		return
	}
	r.seqMu.Lock()
	r.seqTab[r.seqPos] = seqEntry{seq: seq, ctx: tc}
	r.seqPos = (r.seqPos + 1) % seqTabSize
	if r.seqLen < seqTabSize {
		r.seqLen++
	}
	r.seqMu.Unlock()
}

// SampledSeqInRange returns the context of a sampled sequence inside
// [first, last], consuming the entry, or ok=false. The replication leader
// calls this once per shipped batch.
func (r *Recorder) SampledSeqInRange(first, last uint64) (Context, uint64, bool) {
	if r == nil || first == 0 {
		return Context{}, 0, false
	}
	r.seqMu.Lock()
	defer r.seqMu.Unlock()
	for i := 0; i < seqTabSize; i++ {
		e := &r.seqTab[i]
		if e.seq >= first && e.seq <= last && e.ctx.Sampled() {
			ctx, seq := e.ctx, e.seq
			*e = seqEntry{}
			return ctx, seq, true
		}
	}
	return Context{}, 0, false
}

// Snapshot copies every currently-published span out of every ring,
// shared and per-connection.
func (r *Recorder) Snapshot() []Span {
	if r == nil {
		return nil
	}
	out := r.shared.snapshot(nil)
	r.mu.Lock()
	conns := append([]*Conn(nil), r.conns...)
	free := append([]*ring(nil), r.free...)
	r.mu.Unlock()
	seen := make(map[*ring]bool, len(conns)+len(free))
	for _, c := range conns {
		if c.ring != nil && !seen[c.ring] {
			seen[c.ring] = true
			out = c.ring.snapshot(out)
		}
	}
	for _, rg := range free {
		if !seen[rg] {
			seen[rg] = true
			out = rg.snapshot(out)
		}
	}
	return out
}

// SlowOps returns the retained slow requests, most recent last.
func (r *Recorder) SlowOps() []SlowOp {
	if r == nil {
		return nil
	}
	r.slowMu.Lock()
	defer r.slowMu.Unlock()
	out := make([]SlowOp, 0, r.slowLen)
	start := (r.slowNext - r.slowLen + slowLogSize) % slowLogSize
	for i := 0; i < r.slowLen; i++ {
		out = append(out, r.slowOps[(start+i)%slowLogSize])
	}
	return out
}

func (r *Recorder) addSlowOp(op SlowOp) {
	r.slowMu.Lock()
	r.slowOps[r.slowNext] = op
	r.slowNext = (r.slowNext + 1) % slowLogSize
	if r.slowLen < slowLogSize {
		r.slowLen++
	}
	r.slowMu.Unlock()
}
