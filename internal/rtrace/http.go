package rtrace

import (
	"encoding/json"
	"net/http"
	"sort"

	"repro/internal/metrics"
)

// spanJSON is the stable /debug/rtrace span shape.
type spanJSON struct {
	Trace  string `json:"trace"` // %016x — 64-bit IDs survive JSON readers as strings
	Span   uint32 `json:"span"`
	Parent uint32 `json:"parent,omitempty"`
	Kind   string `json:"kind"`
	Op     uint8  `json:"op,omitempty"`
	Conn   uint32 `json:"conn,omitempty"`
	Start  int64  `json:"start_unix_ns"`
	Dur    int64  `json:"dur_ns"`
	Arg    int64  `json:"arg,omitempty"`
}

type slowOpJSON struct {
	Trace    string     `json:"trace"`
	Op       uint8      `json:"op"`
	Key      int64      `json:"key"`
	Start    int64      `json:"start_unix_ns"`
	Dur      int64      `json:"dur_ns"`
	Dominant string     `json:"dominant"`
	Spans    []spanJSON `json:"spans"`
}

type dumpJSON struct {
	Spans  []spanJSON               `json:"spans"`
	Slow   []slowOpJSON             `json:"slow"`
	Phases map[string]PhaseSnapshot `json:"phases"`
}

func toSpanJSON(sp Span) spanJSON {
	return spanJSON{
		Trace: hex64(sp.TraceID), Span: sp.SpanID, Parent: sp.Parent,
		Kind: KindName(sp.Kind), Op: sp.Op, Conn: sp.Conn,
		Start: sp.Start, Dur: sp.Dur, Arg: sp.Arg,
	}
}

func hex64(v uint64) string {
	const digits = "0123456789abcdef"
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = digits[v&0xf]
		v >>= 4
	}
	return string(b[:])
}

// Dump assembles the full recorder state (spans sorted by start time, the
// slow-op log, phase aggregates) for the JSON endpoint and test assertions.
func (r *Recorder) Dump() ([]Span, []SlowOp, map[string]PhaseSnapshot) {
	spans := r.Snapshot()
	sort.Slice(spans, func(i, j int) bool { return spans[i].Start < spans[j].Start })
	return spans, r.SlowOps(), r.Phases()
}

// ServeJSON is the GET /debug/rtrace handler: every published span, the
// slow-op log, and the cumulative phase aggregates.
func (r *Recorder) ServeJSON(w http.ResponseWriter, _ *http.Request) {
	spans, slow, phases := r.Dump()
	d := dumpJSON{
		Spans:  make([]spanJSON, 0, len(spans)),
		Slow:   make([]slowOpJSON, 0, len(slow)),
		Phases: phases,
	}
	for _, sp := range spans {
		d.Spans = append(d.Spans, toSpanJSON(sp))
	}
	for _, so := range slow {
		sj := slowOpJSON{
			Trace: hex64(so.TraceID), Op: so.Op, Key: so.Key,
			Start: so.Start, Dur: so.Dur, Dominant: so.DominantName(),
		}
		for _, sp := range so.Spans {
			sj.Spans = append(sj.Spans, toSpanJSON(sp))
		}
		d.Slow = append(d.Slow, sj)
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(d)
}

// chromeEvent is one Chrome trace-event ("X" complete events for spans,
// "i" instants for zero-duration events), loadable in about://tracing and
// Perfetto. Timestamps are microseconds.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   uint32         `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

type chromeDoc struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
}

// ServeChrome is the GET /debug/rtrace/chrome handler: the same spans in
// Chrome trace-event format. Connections map to tids so each connection's
// requests stack on their own row.
func (r *Recorder) ServeChrome(w http.ResponseWriter, _ *http.Request) {
	spans, _, _ := r.Dump()
	doc := chromeDoc{TraceEvents: make([]chromeEvent, 0, len(spans))}
	for _, sp := range spans {
		ev := chromeEvent{
			Name: KindName(sp.Kind),
			Cat:  "rtrace",
			TS:   float64(sp.Start) / 1e3,
			PID:  1,
			TID:  sp.Conn,
			Args: map[string]any{
				"trace":  hex64(sp.TraceID),
				"span":   sp.SpanID,
				"parent": sp.Parent,
				"arg":    sp.Arg,
			},
		}
		if sp.Dur > 0 {
			ev.Phase = "X"
			ev.Dur = float64(sp.Dur) / 1e3
		} else {
			ev.Phase = "i"
			ev.Scope = "t"
		}
		doc.TraceEvents = append(doc.TraceEvents, ev)
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(doc)
}

// MetricsHook folds recorder totals into a metrics snapshot
// (bst_rtrace_* series): spans and slow ops as monotonic counters, per-
// phase cumulative counts and nanoseconds.
func (r *Recorder) MetricsHook(s *metrics.Snapshot) {
	if r == nil {
		return
	}
	var spans uint64
	for k := uint8(1); k < kMax; k++ {
		c := r.phases[k].count.Load()
		if c == 0 {
			continue
		}
		spans += c
		name := KindName(k)
		s.External["rtrace_phase_"+name+"_spans_total"] = c
		s.External["rtrace_phase_"+name+"_nanos_total"] = r.phases[k].nanos.Load()
	}
	s.External["rtrace_spans_total"] = spans
	r.slowMu.Lock()
	slow := uint64(r.slowLen)
	r.slowMu.Unlock()
	s.Gauges["rtrace_slow_ops_retained"] = float64(slow)
}
