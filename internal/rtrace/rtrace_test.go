package rtrace

import (
	"testing"
	"time"
)

func TestContextRoundTrip(t *testing.T) {
	cases := []Context{
		{},
		{TraceID: 1, SpanID: 2, Flags: FlagSampled},
		{TraceID: ^uint64(0), SpanID: ^uint32(0), Flags: 0xff},
		{TraceID: 0xdeadbeefcafe, SpanID: 0, Flags: 0},
	}
	for _, c := range cases {
		b := AppendContext(nil, c)
		if len(b) != ContextLen {
			t.Fatalf("AppendContext(%+v) encoded %d bytes, want %d", c, len(b), ContextLen)
		}
		got, ok := DecodeContext(b)
		if !ok || got != c {
			t.Fatalf("DecodeContext(AppendContext(%+v)) = (%+v, %v)", c, got, ok)
		}
	}
	if _, ok := DecodeContext(make([]byte, ContextLen-1)); ok {
		t.Fatal("DecodeContext accepted a short buffer")
	}
	// Sampled requires both the flag and a nonzero trace ID.
	if (Context{Flags: FlagSampled}).Sampled() {
		t.Fatal("zero trace ID reported sampled")
	}
	if (Context{TraceID: 7}).Sampled() {
		t.Fatal("unflagged context reported sampled")
	}
}

func TestSampleNextRate(t *testing.T) {
	r := New(Options{SampleEvery: 4})
	sampled := 0
	for i := 0; i < 400; i++ {
		if tc := r.SampleNext(); tc.Sampled() {
			sampled++
		}
	}
	if sampled != 100 {
		t.Fatalf("SampleEvery=4: %d/400 sampled, want 100", sampled)
	}
	var off *Recorder
	if off.SampleNext().Sampled() || New(Options{}).SampleNext().Sampled() {
		t.Fatal("disabled recorder produced a sampled context")
	}
}

func TestConnRequestTree(t *testing.T) {
	r := New(Options{})
	c := r.NewConn()
	defer c.Close()

	parent := Context{TraceID: 99, SpanID: 7, Flags: FlagSampled}
	if !c.StartRequest(parent, 2, 1234) {
		t.Fatal("StartRequest with a sampled context not sampled")
	}
	start := time.Now()
	c.Span(KTreeOp, start, 1234)
	c.Event(KRetry, 3)
	c.EndRequest()

	spans := r.Snapshot()
	var root, child, event *Span
	for i := range spans {
		switch spans[i].Kind {
		case KRequest:
			root = &spans[i]
		case KTreeOp:
			child = &spans[i]
		case KRetry:
			event = &spans[i]
		}
	}
	if root == nil || child == nil || event == nil {
		t.Fatalf("snapshot missing spans: %+v", spans)
	}
	if root.TraceID != 99 || root.Parent != 7 || root.Op != 2 || root.Arg != 1234 {
		t.Fatalf("root span wrong: %+v", *root)
	}
	if child.Parent != root.SpanID || child.TraceID != 99 {
		t.Fatalf("child not parented under root: child %+v root %+v", *child, *root)
	}
	if event.Parent != root.SpanID || event.Dur != 0 || event.Arg != 3 {
		t.Fatalf("event wrong: %+v", *event)
	}
	ph := r.Phases()
	if ph["request"].Count != 1 || ph["tree_op"].Count != 1 {
		t.Fatalf("phases not folded: %+v", ph)
	}
}

func TestConnSelfSampling(t *testing.T) {
	r := New(Options{SampleEvery: 2})
	c := r.NewConn()
	defer c.Close()
	sampled := 0
	for i := 0; i < 10; i++ {
		if c.StartRequest(Context{}, 1, int64(i)) {
			sampled++
			c.EndRequest()
		}
	}
	if sampled != 5 {
		t.Fatalf("SampleEvery=2 over 10 requests: %d sampled, want 5", sampled)
	}
	// Self-sampled requests get distinct fresh trace IDs and no parent.
	seen := map[uint64]bool{}
	for _, sp := range r.Snapshot() {
		if sp.Kind != KRequest {
			continue
		}
		if sp.Parent != 0 {
			t.Fatalf("self-sampled root has parent: %+v", sp)
		}
		if seen[sp.TraceID] {
			t.Fatalf("trace ID %d reused", sp.TraceID)
		}
		seen[sp.TraceID] = true
	}
}

func TestRingOverwriteOldest(t *testing.T) {
	r := New(Options{})
	// Loose spans land in the shared ring; overflow it and verify the
	// newest survive and the count stays bounded.
	for i := 0; i < sharedRingSize+100; i++ {
		r.Record(Span{TraceID: 1, SpanID: uint32(i + 1), Kind: KCheckpoint, Arg: int64(i)})
	}
	spans := r.Snapshot()
	if len(spans) != sharedRingSize {
		t.Fatalf("snapshot holds %d spans, want exactly %d", len(spans), sharedRingSize)
	}
	minArg := int64(1 << 62)
	for _, sp := range spans {
		if sp.Arg < minArg {
			minArg = sp.Arg
		}
	}
	if minArg != 100 {
		t.Fatalf("oldest surviving span Arg = %d, want 100 (overwrite-oldest)", minArg)
	}
}

func TestSlowOpDominantPhase(t *testing.T) {
	r := New(Options{SlowOp: time.Microsecond})
	c := r.NewConn()
	defer c.Close()
	if !c.StartRequest(Context{TraceID: 5, Flags: FlagSampled}, 1, 42) {
		t.Fatal("not sampled")
	}
	walStart := time.Now()
	time.Sleep(2 * time.Millisecond) // the dominant phase
	c.Span(KWALWait, walStart, 10)
	c.Span(KTreeOp, time.Now(), 42) // ~zero duration
	c.EndRequest()

	slow := r.SlowOps()
	if len(slow) != 1 {
		t.Fatalf("SlowOps len = %d, want 1", len(slow))
	}
	so := slow[0]
	if so.TraceID != 5 || so.Key != 42 {
		t.Fatalf("slow op identity wrong: %+v", so)
	}
	if so.Dominant != KWALWait || so.DominantName() != "wal_wait" {
		t.Fatalf("dominant = %s, want wal_wait", so.DominantName())
	}
	if len(so.Spans) != 3 {
		t.Fatalf("slow op retained %d spans, want 3", len(so.Spans))
	}
}

func TestSampledSeqTable(t *testing.T) {
	r := New(Options{})
	tc := Context{TraceID: 11, SpanID: 22, Flags: FlagSampled}
	r.NoteSampledSeq(500, tc)

	if _, _, ok := r.SampledSeqInRange(1, 499); ok {
		t.Fatal("found a seq outside the range")
	}
	got, seq, ok := r.SampledSeqInRange(400, 600)
	if !ok || got != tc || seq != 500 {
		t.Fatalf("SampledSeqInRange = (%+v, %d, %v)", got, seq, ok)
	}
	// The entry is consumed: exactly one shipped batch carries the stamp.
	if _, _, ok := r.SampledSeqInRange(400, 600); ok {
		t.Fatal("entry not consumed")
	}
}

// TestSampledPathAllocs is half of the CI overhead gate (the throughput
// half lives in overhead_test.go): the sampled hot path — request root,
// child span, flush to the ring, phase fold — must not allocate. The slow-
// op copy is exempt (it only runs past the latency threshold, off the fast
// path), so SlowOp stays 0 here.
func TestSampledPathAllocs(t *testing.T) {
	r := New(Options{SampleEvery: 1})
	c := r.NewConn()
	defer c.Close()
	tc := Context{TraceID: 1, SpanID: 1, Flags: FlagSampled}
	start := time.Now()
	if allocs := testing.AllocsPerRun(1000, func() {
		c.StartRequest(tc, 1, 7)
		c.Span(KTreeOp, start, 7)
		c.EndRequest()
	}); allocs != 0 {
		t.Fatalf("sampled conn path allocates %.1f per request, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(1000, func() {
		r.Record(Span{TraceID: 1, SpanID: 2, Kind: KApply})
	}); allocs != 0 {
		t.Fatalf("loose Record allocates %.1f per span, want 0", allocs)
	}
	// And the disabled path: nil recorder, nil conn.
	var off *Recorder
	oc := off.NewConn()
	if allocs := testing.AllocsPerRun(1000, func() {
		off.SampleNext()
		oc.StartRequest(Context{}, 1, 7)
		oc.EndRequest()
		off.Span(Context{}, KTreeOp, start, 0)
	}); allocs != 0 {
		t.Fatalf("disabled path allocates %.1f per request, want 0", allocs)
	}
}
