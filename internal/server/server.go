// Package server exposes a bst.Tree over a TCP binary protocol
// (internal/wire) behind a production robustness stack:
//
//   - admission control: a bounded in-flight semaphore; requests beyond
//     the cap are shed with wire.StatusOverloaded *before* touching the
//     tree, so an overloaded server stays responsive instead of queueing
//     without bound;
//   - deadlines: every request carries a time budget (or inherits the
//     server default) propagated as a context.Context; expired requests
//     answer wire.StatusDeadlineExceeded rather than consuming tree time;
//   - fail-soft tree errors: bst.ErrCapacity and bst.ErrKeyOutOfRange map
//     to distinct wire statuses, so clients can apply distinct retry
//     policies (wait-for-deletes vs give-up);
//   - panic isolation: a panic while serving a request is confined to its
//     connection — the client gets wire.StatusInternal, the connection is
//     poisoned and closed, every other connection keeps serving;
//   - slow-loris defense: a per-frame read deadline; a peer that dribbles
//     bytes or goes silent mid-frame is disconnected;
//   - graceful drain: Shutdown stops accepting, lets every in-flight
//     request finish and get its response, closes per-connection
//     accessors (folding their stats/metrics), and leaves the tree ready
//     for Tree.Close — nothing acknowledged is ever dropped.
//
// One goroutine serves each connection, owning a private bst.Accessor —
// the paper's per-thread handle discipline carried over the network
// boundary: requests on one connection execute in order on one handle, so
// the single-goroutine contract holds with zero locking on the hot path.
package server

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"sync"
	"sync/atomic"
	"time"

	bst "repro"
	"repro/internal/durable"
	"repro/internal/failpoint"
	"repro/internal/logx"
	"repro/internal/metrics"
	"repro/internal/rtrace"
	"repro/internal/wal"
	"repro/internal/wire"
)

// Failpoint site names understood by servers built with Config.Failpoints.
const (
	// FPHandle fires after admission (the semaphore slot is held) and
	// before the request executes. A stall here freezes one in-flight
	// request, which is how tests make shedding and drain deterministic.
	FPHandle = "server-handle"
	// FPPanic fires at the same point; a triggered hit panics, exercising
	// the per-connection isolation path.
	FPPanic = "server-panic"
)

// Store is the data plane a Server fronts: per-connection accessors for
// point and batch operations, the epoch-pinned concurrent scan for range
// queries, and the health report the admin endpoints serve. *bst.Tree
// satisfies it directly (the in-memory server), and durable.Tree satisfies
// it with write-ahead logging layered under every mutation — the server
// code cannot tell the difference, which is the point: durability is a
// deployment choice, not a protocol change.
type Store interface {
	NewAccessor() bst.Accessor
	Scan(from, to int64, yield func(key int64) bool)
	Health() bst.Health
}

// Cluster is the replication control plane a server consults when it is
// part of a WAL-shipping cluster (repl.Node implements it). All methods
// must be safe for concurrent use. A nil Config.Cluster means standalone
// serving — every check compiles down to one nil test.
type Cluster interface {
	// IsLeader reports whether this node currently takes writes.
	IsLeader() bool
	// LeaderAddr is the data address of the cluster's leader as this node
	// knows it ("" when unknown); carried in StatusNotLeader redirects.
	LeaderAddr() string
	// Term is the current promotion term (diagnostics).
	Term() uint64
	// AppliedSeq is the newest WAL sequence reflected in this node's tree.
	AppliedSeq() uint64
	// AckedSeq is the newest sequence a follower has acknowledged
	// (leader; 0 on followers).
	AckedSeq() uint64
	// WaitApplied blocks until AppliedSeq reaches seq or ctx is done —
	// the read-your-writes gate behind OpLookupAt.
	WaitApplied(ctx context.Context, seq uint64) error
	// WaitReplicated blocks until a follower ack covers seq (semi-sync
	// leaders; immediate nil otherwise). An error means the write must
	// not be acknowledged yet — the server answers retryably instead.
	WaitReplicated(ctx context.Context, seq uint64) error
	// LeaseExpired reports a follower that has lost contact with its
	// leader (health/readiness surface).
	LeaseExpired() bool
	// LeaseRemaining is how much of the follower's heartbeat lease is
	// left before it considers the leader lost (0 when expired; a
	// leader reports its full lease, it never expires on itself).
	LeaseRemaining() time.Duration
	// LeaderCommit is the newest WAL sequence this node has heard the
	// leader commit — on a follower, AppliedSeq lagging this is
	// replication staleness; on the leader it equals its own last seq.
	LeaderCommit() uint64
	// Followers is the number of connected replication subscribers.
	Followers() int
}

// fencer is the optional Cluster extension for term fencing: Fenced
// reports a node deposed by a newer leader term that has not re-promoted
// since. repl.Node implements it; Cluster fakes that predate fencing stay
// compilable and simply never fence.
type fencer interface{ Fenced() bool }

// fencedNoter is the optional Cluster extension notified once per request
// the server refuses with StatusFenced, so the cluster layer's metrics
// count them alongside its own fence events.
type fencedNoter interface{ NoteFenced() }

// clusterFenced reports whether the cluster node is fenced (false when
// standalone or when the Cluster doesn't expose fencing).
func (s *Server) clusterFenced() bool {
	f, ok := s.cfg.Cluster.(fencer)
	return ok && f.Fenced()
}

// noteFenced counts one request refused for being fenced, in the server's
// own counters and (when supported) the cluster's.
func (s *Server) noteFenced() {
	s.stats.fenced.Add(1)
	if fn, ok := s.cfg.Cluster.(fencedNoter); ok {
		fn.NoteFenced()
	}
}

// Config tunes a Server. One of Store or Tree is required; everything else
// has serving defaults.
type Config struct {
	// Store is the data plane. Leave nil to serve Tree directly.
	Store Store
	// Tree is the shared in-memory store, used when Store is nil. The
	// server creates one Accessor per connection and Closes it when the
	// connection ends.
	Tree *bst.Tree
	// MaxInFlight bounds concurrently executing requests across all
	// connections; excess requests are shed with StatusOverloaded.
	// Default 256.
	MaxInFlight int
	// AdmissionWait is how long a request may wait for an in-flight slot
	// before being shed. 0 (the default) sheds immediately: under
	// overload the cheapest thing a server can do is say no quickly.
	AdmissionWait time.Duration
	// DefaultDeadline applies to requests that carry no deadline of their
	// own. Default 1s.
	DefaultDeadline time.Duration
	// ReadTimeout is the per-frame read deadline: the longest the server
	// waits for a request frame to start *and* finish arriving. Idle
	// connections beyond it are closed (clients reconnect transparently);
	// mid-frame it is the slow-loris guard. Default 60s.
	ReadTimeout time.Duration
	// RangeLimit caps keys per range response (and is the default when a
	// request asks for 0). Default 1024, hard-capped so a response always
	// fits in wire.MaxFrame.
	RangeLimit int
	// Metrics, when non-nil, receives the server's counters (shed,
	// timeouts, drains, ...) as external series on every snapshot, so one
	// scrape shows tree contention and serving health side by side. When
	// nil a private registry is created for the admin endpoint.
	Metrics *metrics.Registry
	// Cluster, when non-nil, makes the server role-aware: mutations on a
	// follower answer StatusNotLeader with the leader's address, lookups
	// can carry read-your-writes sequence floors (OpLookupAt), and write
	// acknowledgements respect the cluster's semi-sync gate.
	Cluster Cluster
	// Failpoints wires the FP* sites for fault-injection tests. Leave nil
	// in production.
	Failpoints *failpoint.Set
	// Trace, when non-nil, is the flight recorder: each connection gets an
	// rtrace.Conn, requests arriving with a sampled wire context (or
	// self-sampled per the recorder's rate) record a span tree covering
	// admission wait, the tree operation, the group-commit WAL wait and the
	// semi-sync replication wait, and slow requests land in the recorder's
	// slow-op log. Nil costs one pointer check per request.
	Trace *rtrace.Recorder
	// Logger, when non-nil, receives one structured record per notable
	// event (accept errors, panics, drain). Records emitted inside a
	// request path carry the connection ID and, when the request is
	// sampled, its trace ID. Nil means silent.
	Logger *slog.Logger
}

// maxRangeLimit keeps the largest possible range response inside
// wire.MaxFrame (respBase + count + keys).
const maxRangeLimit = (wire.MaxFrame - 64) / 8

// Counters is a point-in-time snapshot of the server's serving statistics.
// Monotonic fields count since server creation; InFlight and OpenConns are
// instantaneous gauges.
type Counters struct {
	ConnsAccepted uint64 // connections accepted
	ConnsClosed   uint64 // connections fully torn down
	Requests      uint64 // requests admitted and executed (any status)
	BatchOps      uint64 // operations carried inside admitted batch frames
	Shed          uint64 // requests rejected with StatusOverloaded
	DrainRejected uint64 // requests rejected with StatusDraining
	Timeouts      uint64 // requests answered StatusDeadlineExceeded
	CapacityErrs  uint64 // requests answered StatusCapacity
	OutOfRange    uint64 // requests answered StatusKeyOutOfRange
	BadRequests   uint64 // malformed frames / unknown ops
	Panics        uint64 // requests answered StatusInternal (recovered panics)
	SlowReads     uint64 // connections dropped mid-frame by the read deadline
	Drains        uint64 // Shutdown calls that completed
	NotLeader     uint64 // writes redirected with StatusNotLeader (follower role)
	Fenced        uint64 // writes refused with StatusFenced (deposed leader)
	ReplLag       uint64 // OpLookupAt requests answered StatusReplLag
	ReplDegraded  uint64 // response windows degraded by a semi-sync ack timeout
	Aggregates    uint64 // OpAggregate requests admitted and executed
	NoIndex       uint64 // OpAggregate requests answered StatusNoIndex
	InFlight      int64  // requests currently holding an admission slot
	OpenConns     int64  // currently open connections
	Draining      bool
}

type counters struct {
	connsAccepted atomic.Uint64
	connsClosed   atomic.Uint64
	requests      atomic.Uint64
	batchOps      atomic.Uint64
	shed          atomic.Uint64
	drainRejected atomic.Uint64
	timeouts      atomic.Uint64
	capacityErrs  atomic.Uint64
	outOfRange    atomic.Uint64
	badRequests   atomic.Uint64
	panics        atomic.Uint64
	slowReads     atomic.Uint64
	drains        atomic.Uint64
	notLeader     atomic.Uint64
	fenced        atomic.Uint64
	replLag       atomic.Uint64
	replDegraded  atomic.Uint64
	aggregates    atomic.Uint64
	noIndex       atomic.Uint64
	inFlight      atomic.Int64
	openConns     atomic.Int64
}

// Server is a TCP front end for one bst.Tree. Create with New, start with
// Start or Serve, stop with Shutdown (graceful) or Close (abrupt).
type Server struct {
	cfg Config
	sem chan struct{} // admission semaphore: one token per in-flight request
	reg *metrics.Registry
	log *slog.Logger

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]struct{}
	draining atomic.Bool
	closed   atomic.Bool

	connWG  sync.WaitGroup // one per live connection goroutine
	serveWG sync.WaitGroup // the accept loop

	stats counters
}

// New creates a server for the configured store. The server does not listen until
// Start or Serve is called.
func New(cfg Config) *Server {
	if cfg.Store == nil {
		if cfg.Tree == nil {
			panic("server: Config.Store or Config.Tree is required")
		}
		cfg.Store = cfg.Tree
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 256
	}
	if cfg.DefaultDeadline <= 0 {
		cfg.DefaultDeadline = time.Second
	}
	if cfg.ReadTimeout <= 0 {
		cfg.ReadTimeout = 60 * time.Second
	}
	if cfg.RangeLimit <= 0 || cfg.RangeLimit > maxRangeLimit {
		if cfg.RangeLimit > maxRangeLimit {
			cfg.RangeLimit = maxRangeLimit
		} else {
			cfg.RangeLimit = 1024
		}
	}
	s := &Server{
		cfg:   cfg,
		sem:   make(chan struct{}, cfg.MaxInFlight),
		conns: make(map[net.Conn]struct{}),
		reg:   cfg.Metrics,
		log:   cfg.Logger,
	}
	if s.log == nil {
		s.log = logx.Discard()
	}
	if s.reg == nil {
		s.reg = metrics.NewRegistry(0)
	}
	// Serving counters ride the metrics snapshot as external series, so
	// the Prometheus endpoint exports tree and server health together.
	s.reg.AddHook(func(sn *metrics.Snapshot) {
		c := s.Counters()
		sn.External["server_conns_accepted_total"] += c.ConnsAccepted
		sn.External["server_requests_total"] += c.Requests
		sn.External["server_batch_ops_total"] += c.BatchOps
		sn.External["server_shed_total"] += c.Shed
		sn.External["server_drain_rejected_total"] += c.DrainRejected
		sn.External["server_deadline_timeouts_total"] += c.Timeouts
		sn.External["server_capacity_errors_total"] += c.CapacityErrs
		sn.External["server_panics_total"] += c.Panics
		sn.External["server_slow_reads_total"] += c.SlowReads
		sn.External["server_drains_total"] += c.Drains
		sn.External["server_not_leader_total"] += c.NotLeader
		sn.External["server_fenced_total"] += c.Fenced
		sn.External["server_repl_lag_total"] += c.ReplLag
		sn.External["server_repl_degraded_total"] += c.ReplDegraded
		sn.Gauges["server_inflight_requests"] = float64(c.InFlight)
		sn.Gauges["server_open_conns"] = float64(c.OpenConns)
		if c.Draining {
			sn.Gauges["server_draining"] = 1
		} else {
			sn.Gauges["server_draining"] = 0
		}
	})
	return s
}

// Counters returns a snapshot of the serving statistics.
func (s *Server) Counters() Counters {
	return Counters{
		ConnsAccepted: s.stats.connsAccepted.Load(),
		ConnsClosed:   s.stats.connsClosed.Load(),
		Requests:      s.stats.requests.Load(),
		BatchOps:      s.stats.batchOps.Load(),
		Shed:          s.stats.shed.Load(),
		DrainRejected: s.stats.drainRejected.Load(),
		Timeouts:      s.stats.timeouts.Load(),
		CapacityErrs:  s.stats.capacityErrs.Load(),
		OutOfRange:    s.stats.outOfRange.Load(),
		BadRequests:   s.stats.badRequests.Load(),
		Panics:        s.stats.panics.Load(),
		SlowReads:     s.stats.slowReads.Load(),
		Drains:        s.stats.drains.Load(),
		NotLeader:     s.stats.notLeader.Load(),
		Fenced:        s.stats.fenced.Load(),
		ReplLag:       s.stats.replLag.Load(),
		ReplDegraded:  s.stats.replDegraded.Load(),
		Aggregates:    s.stats.aggregates.Load(),
		NoIndex:       s.stats.noIndex.Load(),
		InFlight:      s.stats.inFlight.Load(),
		OpenConns:     s.stats.openConns.Load(),
		Draining:      s.draining.Load(),
	}
}

// Start listens on addr and serves in a background goroutine. Use Addr to
// recover the bound address (handy with ":0").
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("server: listen %s: %w", addr, err)
	}
	s.mu.Lock()
	s.ln = ln // visible to Addr before the accept goroutine runs
	s.mu.Unlock()
	s.serveWG.Add(1)
	go func() {
		defer s.serveWG.Done()
		s.Serve(ln)
	}()
	return nil
}

// Addr returns the listener address, or nil before Start/Serve.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Serve accepts connections on ln until the listener is closed (by
// Shutdown or Close). It returns nil on a clean shutdown.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			if s.draining.Load() || s.closed.Load() {
				return nil
			}
			return fmt.Errorf("server: accept: %w", err)
		}
		if s.draining.Load() || s.closed.Load() {
			c.Close() // raced the drain; never acknowledged, safe to drop
			continue
		}
		s.stats.connsAccepted.Add(1)
		s.stats.openConns.Add(1)
		s.mu.Lock()
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.connWG.Add(1)
		go s.handleConn(c)
	}
}

// forgetConn unregisters and closes a connection.
func (s *Server) forgetConn(c net.Conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
	c.Close()
	s.stats.openConns.Add(-1)
	s.stats.connsClosed.Add(1)
}

// connScratch holds one connection's reusable batch buffers, so the
// steady-state batch path decodes, executes and encodes without
// allocating.
type connScratch struct {
	ops     []wire.BatchOp
	results []wire.BatchResult
	keys    []int64
	res     []bst.OpResult
}

// ticketAccessor is the asynchronous-durability surface of a store's
// accessor (durable.Tree's accessors implement it): mutations apply and
// enqueue their WAL record but return a ticket instead of waiting for the
// fsync, letting the connection batch one durability wait over a whole
// window of pipelined operations.
type ticketAccessor interface {
	TryInsertTicket(key int64) (bool, wal.Ticket, error)
	DeleteTicket(key int64) (bool, wal.Ticket, error)
}

// maxWindow bounds how many responses a connection defers before forcing
// a flush, so a relentless pipeline still sees bounded ack latency.
const maxWindow = 256

// pendingResp is one deferred response: the encoded payload plus the WAL
// sequence it would acknowledge (0 for reads and failed ops).
type pendingResp struct {
	payload []byte
	seq     uint64
}

// handleConn serves one connection: a private accessor, a read loop with a
// per-frame deadline, one response per request. Reads and writes both go
// through bufio, and responses are *windowed*: each response is staged
// with the WAL ticket of the mutation it acknowledges, and the window is
// flushed when the read buffer has no complete next request (the moment
// the client is actually waiting), when it reaches maxWindow, or on
// poisoning. One flush waits once on the window's last WAL ticket — group
// commits fsync in sequence order, so the last record durable implies
// every earlier one is — and once on the cluster's semi-sync gate, so a
// pipelined burst of n mutations pays one fsync wait and one replication
// wait instead of n of each. Returning closes the connection and folds
// the accessor's state back into the tree.
func (s *Server) handleConn(c net.Conn) {
	defer s.connWG.Done()
	defer s.forgetConn(c)
	acc := s.cfg.Store.NewAccessor()
	defer acc.Close()
	tr := s.cfg.Trace.NewConn() // nil Conn (a no-op) when tracing is off
	defer tr.Close()

	br := bufio.NewReaderSize(c, 32<<10)
	bw := bufio.NewWriterSize(c, 32<<10)
	defer bw.Flush()
	var cs connScratch
	var scratch []byte
	out := wire.GetBuf()
	defer wire.PutBuf(out)

	var (
		win     []pendingResp
		nwin    int
		tickets wal.TicketSet
		maxSeq  uint64
	)
	stage := func(payload []byte, t wal.Ticket, seq uint64) {
		if nwin < len(win) {
			win[nwin].payload = append(win[nwin].payload[:0], payload...)
			win[nwin].seq = seq
		} else {
			win = append(win, pendingResp{payload: append([]byte(nil), payload...), seq: seq})
		}
		nwin++
		// One ticket per WAL lane: a sharded store routes each mutation to
		// its key's lane, and waiting on one lane's newest ticket says
		// nothing about a sibling lane — the set keeps the newest per lane.
		tickets.Add(t)
		if seq > maxSeq {
			maxSeq = seq
		}
	}
	flushWin := func() bool {
		if nwin == 0 {
			return true
		}
		// The window's durability and replication waits are attributed to
		// the sampled request currently tracked (under pipelining, the last
		// sampled request staged into this window — see rtrace.Conn).
		defer tr.EndRequest()
		if !tickets.Empty() {
			walStart := time.Now()
			if err := tickets.Wait(); err != nil {
				// Durability unknown for the window's mutations: acknowledge
				// nothing and sever the connection — a dropped response is a
				// retryable transport error to the client, never a false ack.
				s.log.Error("wal wait failed; severing connection", "conn", tr.ID(), "err", err)
				nwin = 0
				tickets.Reset()
				return false
			}
			tr.Span(rtrace.KWALWait, walStart, int64(maxSeq))
		}
		if cl := s.cfg.Cluster; cl != nil && maxSeq > 0 {
			replStart := time.Now()
			if err := cl.WaitReplicated(context.Background(), maxSeq); err != nil {
				// Semi-sync degraded: rewrite every response whose sequence
				// is not yet covered by a follower ack to StatusOverloaded
				// (retryable — the op is applied and locally durable, but
				// the cluster's ack contract isn't met). Covered responses
				// ship unchanged. A fence mid-window is stronger: the node
				// was deposed with these writes in flight, and acking them
				// would claim a durability the new leader's history may not
				// have — answer StatusFenced with a redirect instead.
				st, leader := wire.StatusOverloaded, ""
				if errors.Is(err, durable.ErrFenced) {
					st, leader = wire.StatusFenced, cl.LeaderAddr()
					s.noteFenced()
				} else {
					s.stats.replDegraded.Add(1)
				}
				acked := cl.AckedSeq()
				for i := 0; i < nwin; i++ {
					if win[i].seq > acked {
						id := binary.BigEndian.Uint64(win[i].payload[:8])
						win[i].payload = wire.AppendResponse(win[i].payload[:0],
							wire.Response{ID: id, Status: st, Leader: leader})
					}
				}
			}
			tr.Span(rtrace.KReplWait, replStart, int64(maxSeq))
		}
		c.SetWriteDeadline(time.Now().Add(s.cfg.ReadTimeout))
		for i := 0; i < nwin; i++ {
			if wire.WriteFrame(bw, win[i].payload) != nil {
				nwin = 0
				return false
			}
		}
		nwin, maxSeq = 0, 0
		tickets.Reset()
		return bw.Flush() == nil
	}
	// Registered after bw.Flush's defer, so it runs first (LIFO): a drain
	// interrupt mid-burst still flushes every staged response.
	defer flushWin()

	for {
		if s.draining.Load() || s.closed.Load() {
			return
		}
		c.SetReadDeadline(time.Now().Add(s.cfg.ReadTimeout))
		frame, newScratch, err := wire.ReadFrame(br, scratch)
		scratch = newScratch
		if err != nil {
			// Timeouts while draining are the drain interrupt; timeouts
			// mid-frame otherwise are a dribbling (or dead) peer.
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() && !s.draining.Load() {
				s.stats.slowReads.Add(1)
			}
			if errors.Is(err, wire.ErrFrameTooBig) {
				s.stats.badRequests.Add(1)
			}
			return
		}
		req, err := wire.DecodeRequest(frame)
		if err != nil {
			// The stream can no longer be trusted to be framed; answer
			// and hang up.
			s.stats.badRequests.Add(1)
			if !flushWin() {
				return
			}
			*out = wire.AppendResponse((*out)[:0], wire.Response{ID: req.ID, Status: wire.StatusBadRequest})
			s.writeFrame(c, bw, *out, true)
			return
		}

		var poisoned bool
		var ticket wal.Ticket
		var seq uint64
		if req.Op == wire.OpBatch {
			var results []wire.BatchResult
			var st wire.Status
			results, st, seq, poisoned = s.dispatchBatch(acc, req, frame, &cs, tr)
			if st == wire.StatusOK {
				*out = wire.AppendBatchResponse((*out)[:0], req.ID, results)
			} else {
				resp := wire.Response{ID: req.ID, Status: st}
				if st == wire.StatusNotLeader || st == wire.StatusFenced {
					resp.Leader = s.leaderAddr()
				}
				*out = wire.AppendResponse((*out)[:0], resp)
			}
		} else if req.Op == wire.OpAggregate {
			// Aggregates answer through their own response shape (the value
			// tail), so they take their own dispatch path beside OpBatch.
			var ar wire.AggregateResponse
			ar, poisoned = s.dispatchAggregate(req, frame, tr)
			*out = wire.AppendAggregateResponse((*out)[:0], ar)
		} else {
			var resp wire.Response
			resp, ticket, seq, poisoned = s.dispatch(acc, req, tr)
			*out = wire.AppendResponse((*out)[:0], resp)
		}
		stage(*out, ticket, seq)
		// Flush only when no next request is already buffered: that is
		// the moment the client is actually waiting on us.
		if br.Buffered() == 0 || poisoned || nwin >= maxWindow {
			if !flushWin() || poisoned {
				return
			}
		}
	}
}

// leaderAddr returns the cluster leader's data address ("" standalone).
func (s *Server) leaderAddr() string {
	if cl := s.cfg.Cluster; cl != nil {
		return cl.LeaderAddr()
	}
	return ""
}

// writeFrame appends one framed payload to the connection's write buffer,
// flushing it when flush is set; false means the connection is broken.
func (s *Server) writeFrame(c net.Conn, bw *bufio.Writer, payload []byte, flush bool) bool {
	c.SetWriteDeadline(time.Now().Add(s.cfg.ReadTimeout))
	if wire.WriteFrame(bw, payload) != nil {
		return false
	}
	if flush {
		return bw.Flush() == nil
	}
	return true
}

// dispatch runs one request through admission control, deadline handling
// and the tree, translating every failure mode to its wire status.
// poisoned reports that the handler panicked and the connection must
// close. ticket/seq describe the mutation's WAL record when the accessor
// supports asynchronous durability — the caller stages the response and
// waits once per window.
func (s *Server) dispatch(acc bst.Accessor, req wire.Request, tr *rtrace.Conn) (resp wire.Response, ticket wal.Ticket, seq uint64, poisoned bool) {
	resp.ID = req.ID
	start := time.Now()

	validOp := req.Op >= wire.OpInsert && req.Op <= wire.OpRange || req.Op == wire.OpLookupAt
	if !validOp {
		s.stats.badRequests.Add(1)
		resp.Status = wire.StatusBadRequest
		return resp, ticket, 0, false
	}
	tr.StartRequest(req.Trace, req.Op, req.Key)
	// Role gate: a follower refuses writes with a redirect to the leader
	// instead of silently diverging from it. Reads (including OpLookupAt)
	// are served from any role. A fenced node — deposed by a newer term —
	// answers StatusFenced instead of StatusNotLeader so clients (and
	// audits) can tell "never was the leader" from "stop trusting this
	// one"; both carry the current leader's address.
	if cl := s.cfg.Cluster; cl != nil && !cl.IsLeader() && (req.Op == wire.OpInsert || req.Op == wire.OpDelete) {
		if s.clusterFenced() {
			s.noteFenced()
			resp.Status, resp.Leader = wire.StatusFenced, cl.LeaderAddr()
			return resp, ticket, 0, false
		}
		s.stats.notLeader.Add(1)
		resp.Status, resp.Leader = wire.StatusNotLeader, cl.LeaderAddr()
		return resp, ticket, 0, false
	}
	if s.draining.Load() {
		s.stats.drainRejected.Add(1)
		resp.Status = wire.StatusDraining
		return resp, ticket, 0, false
	}

	// Admission: take an in-flight token or shed. The bounded wait (0 by
	// default) is the only queueing the server ever does; only that waited
	// path records a KQueueWait span (the fast path never queues).
	select {
	case s.sem <- struct{}{}:
	default:
		if s.cfg.AdmissionWait <= 0 {
			s.stats.shed.Add(1)
			resp.Status = wire.StatusOverloaded
			return resp, ticket, 0, false
		}
		qStart := time.Now()
		t := time.NewTimer(s.cfg.AdmissionWait)
		select {
		case s.sem <- struct{}{}:
			t.Stop()
			tr.Span(rtrace.KQueueWait, qStart, 0)
		case <-t.C:
			s.stats.shed.Add(1)
			resp.Status = wire.StatusOverloaded
			return resp, ticket, 0, false
		}
	}
	s.stats.inFlight.Add(1)
	defer func() {
		s.stats.inFlight.Add(-1)
		<-s.sem
		if p := recover(); p != nil {
			s.stats.panics.Add(1)
			s.log.Error("panic serving request", "op", wire.OpName(req.Op), "key", req.Key,
				"conn", tr.ID(), "trace", tr.Context().TraceID, "panic", p)
			resp = wire.Response{ID: req.ID, Status: wire.StatusInternal}
			ticket, seq = wal.Ticket{}, 0
			poisoned = true
		}
	}()
	s.stats.requests.Add(1)

	if fp := s.cfg.Failpoints; fp != nil {
		fp.Hit(FPHandle) // stall-style injection parks here, holding its slot
		if fp.Hit(FPPanic) {
			panic("failpoint " + FPPanic)
		}
	}

	// Deadline: the request's budget (or the server default) becomes a
	// context carried through execution.
	budget := s.cfg.DefaultDeadline
	if req.DeadlineMS > 0 {
		budget = time.Duration(req.DeadlineMS) * time.Millisecond
	}
	ctx, cancel := context.WithDeadline(context.Background(), start.Add(budget))
	defer cancel()

	opStart := time.Now()
	resp, ticket, seq = s.execute(ctx, acc, req)
	tr.Span(rtrace.KTreeOp, opStart, req.Key)
	if seq != 0 {
		// Link the WAL sequence this mutation produced to its trace, so the
		// replication leader can stamp the shipped batch that covers it.
		s.cfg.Trace.NoteSampledSeq(seq, tr.Context())
	}
	return resp, ticket, seq, false
}

// dispatchBatch is dispatch for OpBatch frames: the whole frame passes
// admission once (one in-flight token per frame, so batching multiplies
// useful work per admission slot rather than competing for more slots) and
// then executes through the accessor's batched operations. A non-OK status
// applies to the whole batch and carries no per-op results; otherwise every
// operation reports its own status. seq is the WAL horizon the batch's
// mutations reached (0 when none) — the durability wait already happened
// inside the batched accessor, but the semi-sync replication wait is the
// window's.
func (s *Server) dispatchBatch(acc bst.Accessor, req wire.Request, frame []byte, cs *connScratch, tr *rtrace.Conn) (results []wire.BatchResult, st wire.Status, seq uint64, poisoned bool) {
	start := time.Now()
	if s.draining.Load() {
		s.stats.drainRejected.Add(1)
		return nil, wire.StatusDraining, 0, false
	}
	ops, err := wire.DecodeBatchOps(frame, cs.ops[:0])
	cs.ops = ops
	if err != nil {
		// The frame boundary held — only the batch payload is malformed —
		// so the connection survives, unlike an unframeable stream.
		s.stats.badRequests.Add(1)
		return nil, wire.StatusBadRequest, 0, false
	}
	tr.StartRequest(req.Trace, wire.OpBatch, int64(len(ops))) // Arg = op count
	mutates := false
	for i := range ops {
		if ops[i].Op == wire.OpInsert || ops[i].Op == wire.OpDelete {
			mutates = true
			break
		}
	}
	// Role gate, same as the single-op path: lookup-only batches serve
	// from any role, anything mutating redirects off a follower — with
	// StatusFenced when this node is a deposed leader.
	if cl := s.cfg.Cluster; cl != nil && !cl.IsLeader() && mutates {
		if s.clusterFenced() {
			s.noteFenced()
			return nil, wire.StatusFenced, 0, false
		}
		s.stats.notLeader.Add(1)
		return nil, wire.StatusNotLeader, 0, false
	}

	select {
	case s.sem <- struct{}{}:
	default:
		if s.cfg.AdmissionWait <= 0 {
			s.stats.shed.Add(1)
			return nil, wire.StatusOverloaded, 0, false
		}
		qStart := time.Now()
		t := time.NewTimer(s.cfg.AdmissionWait)
		select {
		case s.sem <- struct{}{}:
			t.Stop()
			tr.Span(rtrace.KQueueWait, qStart, 0)
		case <-t.C:
			s.stats.shed.Add(1)
			return nil, wire.StatusOverloaded, 0, false
		}
	}
	s.stats.inFlight.Add(1)
	defer func() {
		s.stats.inFlight.Add(-1)
		<-s.sem
		if p := recover(); p != nil {
			s.stats.panics.Add(1)
			s.log.Error("panic serving batch", "ops", len(ops),
				"conn", tr.ID(), "trace", tr.Context().TraceID, "panic", p)
			results, st, seq, poisoned = nil, wire.StatusInternal, 0, true
		}
	}()
	s.stats.requests.Add(1)
	s.stats.batchOps.Add(uint64(len(ops)))

	if fp := s.cfg.Failpoints; fp != nil {
		fp.Hit(FPHandle)
		if fp.Hit(FPPanic) {
			panic("failpoint " + FPPanic)
		}
	}

	budget := s.cfg.DefaultDeadline
	if req.DeadlineMS > 0 {
		budget = time.Duration(req.DeadlineMS) * time.Millisecond
	}
	ctx, cancel := context.WithDeadline(context.Background(), start.Add(budget))
	defer cancel()

	opStart := time.Now()
	results = s.executeBatch(ctx, acc, ops, cs)
	tr.Span(rtrace.KTreeOp, opStart, int64(len(ops)))
	if mutates && s.cfg.Cluster != nil {
		// Conservative horizon for the semi-sync gate: every record this
		// batch logged has seq at or below the store's current last.
		if ds, can := s.cfg.Store.(interface{ LastSeq() uint64 }); can {
			seq = ds.LastSeq()
		}
	}
	if seq != 0 {
		s.cfg.Trace.NoteSampledSeq(seq, tr.Context())
	}
	return results, wire.StatusOK, seq, false
}

// executeBatch runs a batch's operations in program order, carving the
// batch into maximal same-kind runs so each run amortizes one shared tree
// descent through the accessor's batched API. The deadline is checked
// between runs: operations past an expired budget answer
// StatusDeadlineExceeded without touching the tree (a run already started
// completes — point operations are not cancellable mid-CAS).
func (s *Server) executeBatch(ctx context.Context, acc bst.Accessor, ops []wire.BatchOp, cs *connScratch) []wire.BatchResult {
	results := cs.results[:0]
	for range ops {
		results = append(results, wire.BatchResult{})
	}
	cs.results = results

	i := 0
	for i < len(ops) {
		if ctx.Err() != nil {
			s.stats.timeouts.Add(1)
			for k := i; k < len(ops); k++ {
				results[k] = wire.BatchResult{Status: wire.StatusDeadlineExceeded}
			}
			break
		}
		j := i + 1
		for j < len(ops) && ops[j].Op == ops[i].Op {
			j++
		}
		keys := cs.keys[:0]
		for k := i; k < j; k++ {
			keys = append(keys, ops[k].Key)
		}
		cs.keys = keys
		if cap(cs.res) < j-i {
			cs.res = make([]bst.OpResult, j-i)
		}
		res := cs.res[:j-i]
		switch ops[i].Op {
		case wire.OpInsert:
			acc.InsertBatch(keys, res)
		case wire.OpDelete:
			acc.DeleteBatch(keys, res)
		case wire.OpLookup:
			acc.ContainsBatch(keys, res)
		}
		for k := i; k < j; k++ {
			r := res[k-i]
			switch {
			case r.Err == nil:
				results[k] = wire.BatchResult{Status: wire.StatusOK, OK: r.OK}
			case errors.Is(r.Err, bst.ErrCapacity):
				s.stats.capacityErrs.Add(1)
				results[k] = wire.BatchResult{Status: wire.StatusCapacity}
			case errors.Is(r.Err, durable.ErrFenced):
				s.noteFenced()
				results[k] = wire.BatchResult{Status: wire.StatusFenced}
			case errors.Is(r.Err, bst.ErrKeyOutOfRange):
				s.stats.outOfRange.Add(1)
				results[k] = wire.BatchResult{Status: wire.StatusKeyOutOfRange}
			default:
				s.stats.badRequests.Add(1)
				results[k] = wire.BatchResult{Status: wire.StatusBadRequest}
			}
		}
		i = j
	}
	return results
}

// execute performs the tree operation under ctx. It assumes admission has
// already been granted. For mutations on a ticket-capable accessor the
// durability wait is deferred to the caller: the returned ticket/seq let
// one window flush cover many operations.
func (s *Server) execute(ctx context.Context, acc bst.Accessor, req wire.Request) (wire.Response, wal.Ticket, uint64) {
	resp := wire.Response{ID: req.ID}
	var ticket wal.Ticket
	var seq uint64
	if ctx.Err() != nil {
		s.stats.timeouts.Add(1)
		resp.Status = wire.StatusDeadlineExceeded
		return resp, ticket, 0
	}
	switch req.Op {
	case wire.OpInsert:
		var ok bool
		var err error
		if ta, can := acc.(ticketAccessor); can {
			ok, ticket, err = ta.TryInsertTicket(req.Key)
			seq = ticket.Seq()
		} else {
			ok, err = acc.TryInsert(req.Key)
		}
		switch {
		case err == nil:
			resp.Status, resp.OK = wire.StatusOK, ok
		case errors.Is(err, bst.ErrCapacity):
			s.stats.capacityErrs.Add(1)
			resp.Status = wire.StatusCapacity
		case errors.Is(err, durable.ErrFenced):
			// Fenced between the role gate and the apply: the store's own
			// gate caught it. Redirect like the dispatch-level refusal.
			s.noteFenced()
			resp.Status, resp.Leader = wire.StatusFenced, s.leaderAddr()
		case errors.Is(err, bst.ErrKeyOutOfRange):
			s.stats.outOfRange.Add(1)
			resp.Status = wire.StatusKeyOutOfRange
		default:
			s.stats.badRequests.Add(1)
			resp.Status = wire.StatusBadRequest
		}
	case wire.OpDelete:
		if !keyInRange(req.Key) {
			s.stats.outOfRange.Add(1)
			resp.Status = wire.StatusKeyOutOfRange
			return resp, ticket, 0
		}
		if ta, can := acc.(ticketAccessor); can {
			ok, t, err := ta.DeleteTicket(req.Key)
			if err != nil {
				if errors.Is(err, durable.ErrFenced) {
					s.noteFenced()
					resp.Status, resp.Leader = wire.StatusFenced, s.leaderAddr()
					return resp, wal.Ticket{}, 0
				}
				s.stats.badRequests.Add(1)
				resp.Status = wire.StatusBadRequest
				return resp, wal.Ticket{}, 0
			}
			ticket, seq = t, t.Seq()
			resp.Status, resp.OK = wire.StatusOK, ok
		} else {
			resp.Status, resp.OK = wire.StatusOK, acc.Delete(req.Key)
		}
	case wire.OpLookup:
		if !keyInRange(req.Key) {
			s.stats.outOfRange.Add(1)
			resp.Status = wire.StatusKeyOutOfRange
			return resp, ticket, 0
		}
		resp.Status, resp.OK = wire.StatusOK, acc.Contains(req.Key)
	case wire.OpLookupAt:
		// Read-your-writes: the client passes the last sequence acked to
		// it; the lookup waits (bounded by the request deadline) until the
		// local tree reflects it, and answers StatusReplLag rather than
		// serve a provably stale read.
		if !keyInRange(req.Key) {
			s.stats.outOfRange.Add(1)
			resp.Status = wire.StatusKeyOutOfRange
			return resp, ticket, 0
		}
		if cl := s.cfg.Cluster; cl != nil {
			if err := cl.WaitApplied(ctx, req.MinSeq); err != nil {
				s.stats.replLag.Add(1)
				resp.Status = wire.StatusReplLag
				return resp, ticket, 0
			}
		} else if ds, can := s.cfg.Store.(interface{ LastSeq() uint64 }); can {
			if ds.LastSeq() < req.MinSeq {
				s.stats.replLag.Add(1)
				resp.Status = wire.StatusReplLag
				return resp, ticket, 0
			}
		} else if req.MinSeq > 0 {
			// No sequence source at all (plain in-memory store): the floor
			// cannot be proven, and lying would defeat the contract.
			s.stats.replLag.Add(1)
			resp.Status = wire.StatusReplLag
			return resp, ticket, 0
		}
		resp.Status, resp.OK = wire.StatusOK, acc.Contains(req.Key)
	case wire.OpRange:
		limit := int(req.Limit)
		if limit <= 0 || limit > s.cfg.RangeLimit {
			limit = s.cfg.RangeLimit
		}
		keys := make([]int64, 0, min(limit, 64))
		expired := false
		i := 0
		// Scan is the epoch-protected concurrent traversal; the limit cap
		// bounds how long one request can pin a reclamation epoch.
		s.cfg.Store.Scan(req.Key, req.To, func(k int64) bool {
			// Deadline check every few keys: a huge range cannot hold
			// its admission slot past its budget.
			if i++; i&63 == 0 && ctx.Err() != nil {
				expired = true
				return false
			}
			keys = append(keys, k)
			return len(keys) < limit
		})
		if expired {
			s.stats.timeouts.Add(1)
			resp.Status = wire.StatusDeadlineExceeded
			return resp, ticket, 0
		}
		resp.Status, resp.OK, resp.Keys = wire.StatusOK, true, keys
	}
	if ctx.Err() != nil && resp.Status == wire.StatusOK && req.Op != wire.OpRange {
		// The op completed after its budget. It *was* executed (point
		// operations are not cancellable mid-CAS), so report success:
		// dropping the acknowledgement would make the client retry a
		// non-idempotent observation. Count it for the operator.
		s.stats.timeouts.Add(1)
	}
	return resp, ticket, seq
}

// keyInRange mirrors the public key bound (any int64 up to bst.MaxKey;
// negatives are storable) so Delete/Contains answer StatusKeyOutOfRange on
// the wire instead of panicking server-side.
func keyInRange(k int64) bool { return k <= bst.MaxKey }

// Shutdown drains the server: stop accepting, interrupt idle reads, let
// every request already received finish and flush its response, then close
// all connections (folding each accessor's stats and metrics shard into
// the tree) and return. If ctx expires first the remaining connections are
// severed and ctx.Err() is returned. After Shutdown the caller may
// Tree.Close the store; the per-connection accessors are already closed,
// so the reclamation domain retires cleanly.
func (s *Server) Shutdown(ctx context.Context) error {
	if s.draining.Swap(true) {
		// A concurrent or repeated Shutdown waits for the first.
		done := make(chan struct{})
		go func() { s.connWG.Wait(); close(done) }()
		select {
		case <-done:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	s.log.Info("draining")
	s.mu.Lock()
	ln := s.ln
	for c := range s.conns {
		// Interrupt reads at the frame boundary: goroutines blocked
		// waiting for a next request wake immediately; goroutines mid
		// request finish it and then observe draining.
		c.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}

	done := make(chan struct{})
	go func() {
		s.connWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.serveWG.Wait()
		s.stats.drains.Add(1)
		s.log.Info("drain complete", "requests", s.stats.requests.Load())
		return nil
	case <-ctx.Done():
		// Force the stragglers.
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		<-done
		s.serveWG.Wait()
		s.stats.drains.Add(1)
		return ctx.Err()
	}
}

// Close abruptly stops the server: the listener and every connection are
// closed without waiting for in-flight requests.
func (s *Server) Close() error {
	s.closed.Store(true)
	s.mu.Lock()
	ln := s.ln
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.connWG.Wait()
	s.serveWG.Wait()
	return nil
}
