package server

import (
	"context"
	"errors"
	"testing"

	bst "repro"
	"repro/internal/client"
)

// TestShardedBatchPartialFailureOverWire pins the sharded partial-failure
// contract on the wire: with the key space partitioned across four trees,
// one shard exhausting its arena must fail only the batch slots whose keys
// route to it — sibling shards' slots in the same frame are acknowledged
// normally, and the per-op statuses round-trip through the batch protocol.
func TestShardedBatchPartialFailureOverWire(t *testing.T) {
	tree, srv, cl0 := startServer(t, []bst.Option{
		bst.WithCapacity(256), // total budget: 64 nodes per shard
		bst.WithShards(4),
		// Inclusive bounds: [0, 2^20-1] spans exactly 2^20 keys, giving a
		// balanced 2^18-wide slice per shard.
		bst.WithShardRange(0, 1<<20-1),
	}, Config{})
	defer cl0.Close()
	defer shutdown(t, srv)
	if tree.Shards() != 4 {
		t.Fatalf("Shards = %d", tree.Shards())
	}
	// One-attempt client: capacity errors surface raw instead of retried.
	cl, err := client.Dial(client.Config{Addr: srv.Addr().String(), MaxAttempts: 1, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()

	// Exhaust shard 0 (keys below 1<<18) over the wire.
	var filled []int64
	for k := int64(0); ; k++ {
		ok, err := cl.Insert(ctx, k)
		if err != nil {
			if !errors.Is(err, bst.ErrCapacity) {
				t.Fatalf("fill: err = %v, want ErrCapacity", err)
			}
			break
		}
		if !ok {
			t.Fatalf("fill: Insert(%d) = false on a fresh key", k)
		}
		filled = append(filled, k)
		if k > 1<<17 {
			t.Fatal("shard 0 arena never filled; capacity not partitioned")
		}
	}

	// One frame spanning the exhausted shard and all three healthy ones,
	// plus a delete on the exhausted shard (deletes allocate nothing and
	// must keep working there).
	sh0a, sh0b := int64(1<<17), int64(1<<17+1) // shard 0, fresh
	ops := []client.Op{
		client.InsertOp(sh0a),      // shard 0: exhausted
		client.InsertOp(1<<18 + 5), // shard 1
		client.InsertOp(sh0b),      // shard 0: exhausted
		client.InsertOp(2<<18 + 5), // shard 2
		client.InsertOp(3<<18 + 5), // shard 3
		client.DeleteOp(filled[0]), // shard 0: delete still fine
		client.LookupOp(filled[1]), // shard 0: read still fine
	}
	res, err := cl.Do(ctx, ops)
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	for _, i := range []int{0, 2} {
		if !errors.Is(res[i].Err, bst.ErrCapacity) {
			t.Fatalf("op %d (exhausted shard): err = %v, want ErrCapacity", i, res[i].Err)
		}
	}
	for _, i := range []int{1, 3, 4, 5, 6} {
		if res[i].Err != nil || !res[i].OK {
			t.Fatalf("op %d poisoned by sibling shard's exhaustion: (%v, %v)", i, res[i].OK, res[i].Err)
		}
	}

	// The wire statuses must agree with the tree.
	for _, i := range []int{1, 3, 4} {
		if !tree.Contains(ops[i].Key) {
			t.Fatalf("acked insert %d missing", ops[i].Key)
		}
	}
	if tree.Contains(sh0a) || tree.Contains(sh0b) {
		t.Fatal("capacity-refused keys present in the tree")
	}
	if tree.Contains(filled[0]) {
		t.Fatal("acked delete did not stick")
	}
	if err := tree.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if srv.Counters().CapacityErrs == 0 {
		t.Fatal("Counters.CapacityErrs = 0 after per-shard capacity failures")
	}
}
