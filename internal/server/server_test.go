package server

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"net"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	bst "repro"
	"repro/internal/client"
	"repro/internal/failpoint"
	"repro/internal/wire"
)

// startServer builds a tree + server + client stack on an ephemeral port.
func startServer(t *testing.T, treeOpts []bst.Option, cfg Config) (*bst.Tree, *Server, *client.Client) {
	t.Helper()
	tree := bst.New(treeOpts...)
	cfg.Tree = tree
	srv := New(cfg)
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	cl, err := client.Dial(client.Config{Addr: srv.Addr().String(), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return tree, srv, cl
}

func shutdown(t *testing.T, srv *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}

func TestBasicOpsOverWire(t *testing.T) {
	tree, srv, cl := startServer(t, nil, Config{})
	defer cl.Close()
	defer shutdown(t, srv)
	ctx := context.Background()

	if ok, err := cl.Insert(ctx, 42); err != nil || !ok {
		t.Fatalf("Insert(42) = (%v, %v), want (true, nil)", ok, err)
	}
	if ok, err := cl.Insert(ctx, 42); err != nil || ok {
		t.Fatalf("duplicate Insert(42) = (%v, %v), want (false, nil)", ok, err)
	}
	if ok, err := cl.Lookup(ctx, 42); err != nil || !ok {
		t.Fatalf("Lookup(42) = (%v, %v), want (true, nil)", ok, err)
	}
	for _, k := range []int64{-5, 7, 100} {
		if _, err := cl.Insert(ctx, k); err != nil {
			t.Fatal(err)
		}
	}
	keys, err := cl.Range(ctx, -10, 50, 0)
	if err != nil {
		t.Fatalf("Range: %v", err)
	}
	want := []int64{-5, 7, 42}
	if len(keys) != len(want) {
		t.Fatalf("Range = %v, want %v", keys, want)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("Range = %v, want %v", keys, want)
		}
	}
	if ok, err := cl.Delete(ctx, 42); err != nil || !ok {
		t.Fatalf("Delete(42) = (%v, %v), want (true, nil)", ok, err)
	}
	if tree.Contains(42) {
		t.Fatal("key 42 still present in the backing tree")
	}
	// Out-of-range keys come back as the in-process sentinel error.
	if _, err := cl.Insert(ctx, bst.MaxKey+1); !errors.Is(err, bst.ErrKeyOutOfRange) {
		t.Fatalf("Insert(MaxKey+1) err = %v, want ErrKeyOutOfRange", err)
	}
	if _, err := cl.Lookup(ctx, bst.MaxKey+1); !errors.Is(err, bst.ErrKeyOutOfRange) {
		t.Fatalf("Lookup(MaxKey+1) err = %v, want ErrKeyOutOfRange", err)
	}
}

// TestLoadSheddingEngagesAndRecovers is acceptance criterion (a): with an
// in-flight cap of 1 and one request frozen mid-execution, concurrent
// requests are shed with StatusOverloaded; after release everything
// retries through, and every acknowledged insert is really in the tree.
func TestLoadSheddingEngagesAndRecovers(t *testing.T) {
	fp := failpoint.NewSet()
	tree, srv, cl := startServer(t, nil, Config{MaxInFlight: 1, Failpoints: fp})
	defer cl.Close()
	defer shutdown(t, srv)

	st := fp.Site(FPHandle)
	st.StallNext()

	// Freeze one insert inside the handler, holding the only slot.
	stalled := make(chan error, 1)
	go func() {
		_, err := cl.Insert(context.Background(), 1)
		stalled <- err
	}()
	if !st.WaitStalled(5 * time.Second) {
		t.Fatal("first request never reached the handler failpoint")
	}

	// A bare-wire probe (no retries) must be shed, not queued.
	probe, err := client.Dial(client.Config{Addr: srv.Addr().String(), MaxAttempts: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer probe.Close()
	if _, err := probe.Insert(context.Background(), 2); !errors.Is(err, client.ErrOverloaded) {
		t.Fatalf("probe insert err = %v, want ErrOverloaded", err)
	}
	if c := srv.Counters(); c.Shed == 0 || c.InFlight != 1 {
		t.Fatalf("counters after shed: %+v, want Shed>0 and InFlight=1", c)
	}

	// Retrying clients ride out the overload: launch a burst, then
	// release the stall; every acknowledged op must be durable.
	const burst = 16
	acked := make([]bool, burst)
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			ok, err := cl.Insert(ctx, int64(100+i))
			if err != nil {
				t.Errorf("burst insert %d: %v", i, err)
				return
			}
			acked[i] = ok
		}(i)
	}
	time.Sleep(20 * time.Millisecond) // let the burst pile into sheds
	st.Release()
	wg.Wait()
	if err := <-stalled; err != nil {
		t.Fatalf("stalled insert failed: %v", err)
	}

	// Zero dropped-but-acknowledged ops.
	if !tree.Contains(1) {
		t.Fatal("stalled insert acknowledged but key 1 missing")
	}
	for i := 0; i < burst; i++ {
		if acked[i] && !tree.Contains(int64(100+i)) {
			t.Fatalf("insert %d acknowledged but missing from the tree", 100+i)
		}
		if !acked[i] {
			t.Fatalf("burst insert %d reported no change on a fresh key", 100+i)
		}
	}
	if c := srv.Counters(); c.InFlight != 0 {
		t.Fatalf("InFlight = %d after recovery, want 0", c.InFlight)
	}
}

// TestCapacityErrorsOnTheWire is acceptance criterion (b): a bounded
// reclaiming arena exhausts mid-traffic, the wire carries StatusCapacity
// (surfacing as bst.ErrCapacity), and the client's capacity backoff
// converges once deletes free space.
func TestCapacityErrorsOnTheWire(t *testing.T) {
	tree, srv, cl := startServer(t,
		[]bst.Option{bst.WithCapacity(128), bst.WithReclamation()},
		Config{})
	defer cl.Close()
	defer shutdown(t, srv)
	ctx := context.Background()

	// One-shot client: sees raw capacity errors without retry masking.
	oneShot, err := client.Dial(client.Config{Addr: srv.Addr().String(), MaxAttempts: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer oneShot.Close()

	var kept []int64
	sawCapacity := false
	for k := int64(0); k < 10_000; k++ {
		ok, err := oneShot.Insert(ctx, k)
		if err != nil {
			if !errors.Is(err, bst.ErrCapacity) {
				t.Fatalf("Insert(%d) err = %v, want ErrCapacity", k, err)
			}
			sawCapacity = true
			break
		}
		if !ok {
			t.Fatalf("Insert(%d) = false on a fresh key", k)
		}
		kept = append(kept, k)
	}
	if !sawCapacity {
		t.Fatal("bounded tree never pushed back over the wire")
	}
	if c := srv.Counters(); c.CapacityErrs == 0 {
		t.Fatalf("server CapacityErrs = 0 after wire capacity error: %+v", c)
	}

	// The full tree still serves reads and deletes over the wire.
	if ok, err := cl.Lookup(ctx, kept[0]); err != nil || !ok {
		t.Fatalf("Lookup at capacity = (%v, %v)", ok, err)
	}

	// Free half through the server, then a retrying insert must converge
	// (the client's capacity backoff rides out the reclamation delay).
	for _, k := range kept[:len(kept)/2] {
		if ok, err := cl.Delete(ctx, k); err != nil || !ok {
			t.Fatalf("Delete(%d) = (%v, %v)", k, ok, err)
		}
	}
	rctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	ok, err := cl.Insert(rctx, 1<<40)
	if err != nil || !ok {
		t.Fatalf("post-free Insert = (%v, %v), want (true, nil); client stats %+v", ok, err, cl.Stats())
	}
	if err := tree.Validate(); err != nil {
		t.Fatalf("tree invalid after exhaust/recover over the wire: %v", err)
	}
}

// TestGracefulDrain is acceptance criterion (c): Shutdown lets the frozen
// in-flight request finish and deliver its response, rejects new work with
// StatusDraining, closes the reclaim domain via Tree.Close, and leaks no
// goroutines.
func TestGracefulDrain(t *testing.T) {
	baseline := runtime.NumGoroutine()

	fp := failpoint.NewSet()
	tree, srv, cl := startServer(t,
		[]bst.Option{bst.WithCapacity(1 << 16), bst.WithReclamation()},
		Config{Failpoints: fp})

	ctx := context.Background()
	for k := int64(0); k < 64; k++ {
		if _, err := cl.Insert(ctx, k); err != nil {
			t.Fatal(err)
		}
	}

	// Freeze one delete inside the handler, then start the drain.
	st := fp.Site(FPHandle)
	st.StallNext()
	stalled := make(chan error, 1)
	stalledOK := make(chan bool, 1)
	go func() {
		ok, err := cl.Delete(context.Background(), 7)
		stalledOK <- ok
		stalled <- err
	}()
	if !st.WaitStalled(5 * time.Second) {
		t.Fatal("delete never reached the handler failpoint")
	}

	drainDone := make(chan error, 1)
	go func() {
		dctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drainDone <- srv.Shutdown(dctx)
	}()

	// While draining: not ready, and new connections are refused.
	waitFor(t, time.Second, func() bool { return srv.Counters().Draining })
	if err := srv.Ready(); err == nil || !strings.Contains(err.Error(), "draining") {
		t.Fatalf("Ready() during drain = %v, want draining error", err)
	}
	if _, err := net.DialTimeout("tcp", srv.Addr().String(), 250*time.Millisecond); err == nil {
		// Accept may race the listener close by one connection; that
		// conn must still be dropped without service. Give it a beat.
		time.Sleep(50 * time.Millisecond)
	}

	// The frozen request must complete and be acknowledged.
	st.Release()
	if err := <-drainDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-stalled; err != nil {
		t.Fatalf("in-flight delete dropped during drain: %v", err)
	}
	if !<-stalledOK {
		t.Fatal("in-flight delete returned false on a present key")
	}
	if tree.Contains(7) {
		t.Fatal("acknowledged delete not applied")
	}
	if c := srv.Counters(); c.Drains != 1 || c.InFlight != 0 || c.OpenConns != 0 {
		t.Fatalf("post-drain counters: %+v", c)
	}

	// Drain ordering: accessors are closed, so the reclaim domain retires
	// cleanly and the tree reports no live epoch slots afterwards.
	if err := tree.Close(); err != nil {
		t.Fatal(err)
	}
	if h := tree.Health(); h.EpochSlots != 0 || h.PinnedSlots != 0 {
		t.Fatalf("epoch slots survived Tree.Close: %+v", h)
	}

	cl.Close()
	// No goroutine leaks: everything the server spawned is gone.
	waitFor(t, 5*time.Second, func() bool { return runtime.NumGoroutine() <= baseline })
	if n := runtime.NumGoroutine(); n > baseline {
		buf := make([]byte, 1<<16)
		t.Fatalf("goroutine leak: %d > baseline %d\n%s", n, baseline, buf[:runtime.Stack(buf, true)])
	}
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		runtime.GC() // finalizer-driven cleanups count too
		time.Sleep(10 * time.Millisecond)
	}
	if !cond() {
		t.Fatalf("condition not reached within %v", timeout)
	}
}

// TestPanicIsolation: a panicking handler answers StatusInternal, poisons
// only its own connection, and every other connection keeps serving.
func TestPanicIsolation(t *testing.T) {
	fp := failpoint.NewSet()
	tree, srv, cl := startServer(t, nil, Config{Failpoints: fp})
	defer cl.Close()
	defer shutdown(t, srv)
	_ = tree
	ctx := context.Background()

	if _, err := cl.Insert(ctx, 1); err != nil {
		t.Fatal(err)
	}

	fp.Site(FPPanic).FailOnce()
	victim, err := client.Dial(client.Config{Addr: srv.Addr().String(), MaxAttempts: 1, Conns: 1, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer victim.Close()
	if _, err := victim.Lookup(ctx, 1); !errors.Is(err, client.ErrInternal) {
		t.Fatalf("victim err = %v, want ErrInternal", err)
	}
	// The victim's connection is poisoned; its next use redials and works.
	if ok, err := victim.Lookup(ctx, 1); err != nil || !ok {
		t.Fatalf("victim after redial = (%v, %v), want (true, nil)", ok, err)
	}
	// Other connections were never disturbed.
	if ok, err := cl.Lookup(ctx, 1); err != nil || !ok {
		t.Fatalf("bystander = (%v, %v), want (true, nil)", ok, err)
	}
	if c := srv.Counters(); c.Panics != 1 {
		t.Fatalf("Panics = %d, want 1", c.Panics)
	}
}

// TestSlowLorisDisconnected: a peer that sends half a frame and stalls is
// dropped by the per-frame read deadline without tying up the server.
func TestSlowLorisDisconnected(t *testing.T) {
	_, srv, cl := startServer(t, nil, Config{ReadTimeout: 200 * time.Millisecond})
	defer cl.Close()
	defer shutdown(t, srv)

	c, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Announce a 21-byte frame, deliver 3 bytes, go silent.
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 21)
	c.Write(hdr[:])
	c.Write([]byte{1, 2, 3})

	waitFor(t, 5*time.Second, func() bool { return srv.Counters().SlowReads >= 1 })
	// The server remains fully available to honest clients.
	if ok, err := cl.Insert(context.Background(), 9); err != nil || !ok {
		t.Fatalf("honest client during slow-loris = (%v, %v)", ok, err)
	}
	// The dribbled connection is actually dead.
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := c.Read(make([]byte, 1)); err == nil {
		t.Fatal("slow-loris connection still open after read timeout")
	}
}

// TestDeadlineExpiredBeforeExecution: a request whose budget is already
// gone when it reaches execution answers StatusDeadlineExceeded.
func TestDeadlineExpiredBeforeExecution(t *testing.T) {
	fp := failpoint.NewSet()
	_, srv, _ := startServer(t, nil, Config{Failpoints: fp})
	defer shutdown(t, srv)

	// Raw wire: a request with a 1ms budget frozen for 100ms at the
	// handler must come back deadline-exceeded.
	c, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	st := fp.Site(FPHandle)
	st.StallNext()
	if err := wire.WriteFrame(c, wire.AppendRequest(nil, wire.Request{ID: 5, Op: wire.OpInsert, DeadlineMS: 1, Key: 3})); err != nil {
		t.Fatal(err)
	}
	if !st.WaitStalled(5 * time.Second) {
		t.Fatal("request never reached the handler failpoint")
	}
	time.Sleep(100 * time.Millisecond)
	st.Release()
	payload, _, err := wire.ReadFrame(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := wire.DecodeResponse(payload)
	if err != nil {
		t.Fatal(err)
	}
	if resp.ID != 5 || resp.Status != wire.StatusDeadlineExceeded {
		t.Fatalf("response = %+v, want id 5 StatusDeadlineExceeded", resp)
	}
	if srv.Counters().Timeouts == 0 {
		t.Fatal("Timeouts counter not incremented")
	}
}

// TestBadRequestsRejected: unknown ops answer StatusBadRequest; an
// oversized length prefix drops the connection before allocation.
func TestBadRequestsRejected(t *testing.T) {
	_, srv, cl := startServer(t, nil, Config{})
	defer cl.Close()
	defer shutdown(t, srv)

	c, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := wire.WriteFrame(c, wire.AppendRequest(nil, wire.Request{ID: 1, Op: 99, Key: 1})); err != nil {
		t.Fatal(err)
	}
	payload, _, err := wire.ReadFrame(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, _ := wire.DecodeResponse(payload)
	if resp.Status != wire.StatusBadRequest {
		t.Fatalf("unknown op status = %v, want StatusBadRequest", resp.Status)
	}

	// Hostile length prefix: connection must die without service.
	c2, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	c2.Write([]byte{0xff, 0xff, 0xff, 0xff})
	c2.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := c2.Read(make([]byte, 1)); err == nil {
		t.Fatal("connection with hostile length prefix survived")
	}
}

// TestAdminEndpoints exercises /healthz, /readyz and /metrics, including
// the server_* counter export.
func TestAdminEndpoints(t *testing.T) {
	_, srv, cl := startServer(t, nil, Config{MaxInFlight: 1})
	defer cl.Close()
	ctx := context.Background()
	if _, err := cl.Insert(ctx, 1); err != nil {
		t.Fatal(err)
	}

	admin := httptest.NewServer(srv.AdminHandler())
	defer admin.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := admin.Client().Get(admin.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return resp.StatusCode, sb.String()
	}

	if code, body := get("/healthz"); code != 200 || !strings.Contains(body, `"status": "ok"`) {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	if code, _ := get("/readyz"); code != 200 {
		t.Fatalf("/readyz = %d, want 200", code)
	}
	code, body := get("/metrics")
	if code != 200 {
		t.Fatalf("/metrics = %d", code)
	}
	for _, want := range []string{"bst_server_requests_total", "bst_server_shed_total", "bst_server_drains_total", "bst_server_inflight_requests"} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %s:\n%s", want, body)
		}
	}
	var doc map[string]any
	if code, body := get("/debug/vars"); code != 200 || json.Unmarshal([]byte(body), &doc) != nil {
		t.Fatalf("/debug/vars = %d, not JSON: %q", code, body)
	}

	shutdown(t, srv)
	if code, _ := get("/readyz"); code != 503 {
		t.Fatalf("/readyz after drain = %d, want 503", code)
	}
	if code, _ := get("/healthz"); code != 200 {
		t.Fatalf("/healthz after drain = %d, want 200 (process still alive)", code)
	}
}

// TestConcurrentMixedLoad: many clients, shedding on, counting invariant
// holds — every acknowledged state change is reflected in the tree.
func TestConcurrentMixedLoad(t *testing.T) {
	tree, srv, _ := startServer(t, nil, Config{MaxInFlight: 4})
	defer shutdown(t, srv)

	const (
		workers  = 8
		keySpace = 32
		opsEach  = 200
	)
	var ins, del [keySpace]atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl, err := client.Dial(client.Config{Addr: srv.Addr().String(), Conns: 1, Seed: int64(w + 1)})
			if err != nil {
				t.Error(err)
				return
			}
			defer cl.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			for i := 0; i < opsEach; i++ {
				k := int64((w*7 + i*13) % keySpace)
				switch i % 3 {
				case 0:
					ok, err := cl.Insert(ctx, k)
					if err != nil {
						t.Errorf("insert: %v", err)
						return
					}
					if ok {
						ins[k].Add(1)
					}
				case 1:
					ok, err := cl.Delete(ctx, k)
					if err != nil {
						t.Errorf("delete: %v", err)
						return
					}
					if ok {
						del[k].Add(1)
					}
				default:
					if _, err := cl.Lookup(ctx, k); err != nil {
						t.Errorf("lookup: %v", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	for k := int64(0); k < keySpace; k++ {
		diff := ins[k].Load() - del[k].Load()
		present := tree.Contains(k)
		if !(diff == 0 && !present || diff == 1 && present) {
			t.Fatalf("key %d: %d acked inserts − %d acked deletes = %d, present=%v",
				k, ins[k].Load(), del[k].Load(), diff, present)
		}
	}
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
}
