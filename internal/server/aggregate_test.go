package server

import (
	"bufio"
	"context"
	"errors"
	"net"
	"testing"

	bst "repro"
	"repro/internal/client"
	"repro/internal/wire"
)

// TestAggregatesOverWire drives the order-statistics queries end to end:
// client frames → server dispatch → indexed tree → value tail back.
func TestAggregatesOverWire(t *testing.T) {
	tree, srv, cl := startServer(t, []bst.Option{bst.WithOrderStatistics()}, Config{})
	defer cl.Close()
	defer shutdown(t, srv)
	ctx := context.Background()

	for k := int64(0); k < 1000; k++ {
		if ok, err := cl.Insert(ctx, k*2); err != nil || !ok {
			t.Fatalf("Insert(%d) = (%v, %v)", k*2, ok, err)
		}
	}
	exact := client.Consistency{Exact: true}

	if got, err := cl.Rank(ctx, 100, exact); err != nil || got != 50 {
		t.Fatalf("Rank(100) = (%d, %v), want 50", got, err)
	}
	if got, err := cl.Select(ctx, 10, exact); err != nil || got != 20 {
		t.Fatalf("Select(10) = (%d, %v), want 20", got, err)
	}
	if got, err := cl.CountRange(ctx, 0, 1998, exact); err != nil || got != 1000 {
		t.Fatalf("CountRange(0,1998) = (%d, %v), want 1000", got, err)
	}
	if got, err := cl.SumRange(ctx, 0, 10, exact); err != nil || got != 0+2+4+6+8+10 {
		t.Fatalf("SumRange(0,10) = (%d, %v), want 30", got, err)
	}
	// Stale answers remain inside the documented bound (quiescent here, so
	// they must agree exactly once a wave has run).
	if got, err := cl.CountRange(ctx, 0, 1998, client.Consistency{MaxDirty: 1 << 20}); err != nil || got > 1000 {
		t.Fatalf("stale CountRange = (%d, %v), want ≤ 1000", got, err)
	}
	if _, err := cl.Select(ctx, 1000, exact); !errors.Is(err, bst.ErrSelectOutOfRange) {
		t.Fatalf("Select(1000) err = %v, want ErrSelectOutOfRange", err)
	}

	// The mutation is visible to the next exact aggregate — the refresh
	// wave linearizes against completed wire mutations.
	if ok, err := cl.Insert(ctx, 1); err != nil || !ok {
		t.Fatalf("Insert(1): (%v, %v)", ok, err)
	}
	if got, err := cl.Rank(ctx, 2, exact); err != nil || got != 2 {
		t.Fatalf("Rank(2) after insert = (%d, %v), want 2", got, err)
	}

	if n := srv.Counters().Aggregates; n == 0 {
		t.Fatal("Counters.Aggregates stayed zero")
	}
	_ = tree
}

// TestAggregateNoIndex: a store without the order-statistics capability
// answers StatusNoIndex, which the client surfaces as ErrNoOrderStats
// without burning retries.
func TestAggregateNoIndex(t *testing.T) {
	_, srv, cl := startServer(t, nil, Config{})
	defer cl.Close()
	defer shutdown(t, srv)
	ctx := context.Background()

	if _, err := cl.Rank(ctx, 1, client.Consistency{Exact: true}); !errors.Is(err, bst.ErrNoOrderStats) {
		t.Fatalf("Rank err = %v, want ErrNoOrderStats", err)
	}
	if got := srv.Counters().NoIndex; got != 1 {
		t.Fatalf("Counters.NoIndex = %d, want 1 (no retries on a permanent status)", got)
	}
}

// TestAggregateBadTail: a malformed aggregate tail answers
// StatusBadRequest but keeps the connection alive (the frame boundary
// held), matching the batch decoder's contract.
func TestAggregateBadTail(t *testing.T) {
	_, srv, cl := startServer(t, []bst.Option{bst.WithOrderStatistics()}, Config{})
	defer cl.Close()
	defer shutdown(t, srv)

	c, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	bw := bufio.NewWriter(c)
	br := bufio.NewReader(c)

	// Base header says OpAggregate, but the 18-byte tail is missing.
	bad := wire.AppendRequest(nil, wire.Request{ID: 7, Op: wire.OpAggregate, Key: 3})
	if err := wire.WriteFrame(bw, bad); err != nil || bw.Flush() != nil {
		t.Fatalf("write bad frame: %v", err)
	}
	payload, _, err := wire.ReadFrame(br, nil)
	if err != nil {
		t.Fatalf("read response: %v", err)
	}
	resp, err := wire.DecodeAggregateResponse(payload)
	if err != nil || resp.ID != 7 || resp.Status != wire.StatusBadRequest {
		t.Fatalf("bad-tail response = (%+v, %v), want id 7 StatusBadRequest", resp, err)
	}

	// The connection survived: a well-formed aggregate on the same conn
	// still answers.
	good := wire.AppendAggregateRequest(nil, wire.AggregateRequest{
		ID: 8, Kind: wire.AggRank, Mode: wire.AggModeExact, Key: 0,
	})
	if err := wire.WriteFrame(bw, good); err != nil || bw.Flush() != nil {
		t.Fatalf("write good frame: %v", err)
	}
	payload, _, err = wire.ReadFrame(br, nil)
	if err != nil {
		t.Fatalf("read second response: %v", err)
	}
	resp, err = wire.DecodeAggregateResponse(payload)
	if err != nil || resp.ID != 8 || resp.Status != wire.StatusOK || resp.Value != 0 {
		t.Fatalf("good response = (%+v, %v), want id 8 OK value 0", resp, err)
	}
}
