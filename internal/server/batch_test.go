package server

import (
	"context"
	"errors"
	"testing"
	"time"

	bst "repro"
	"repro/internal/client"
	"repro/internal/wire"
)

// TestBatchOverWire drives a mixed batch — inserts, lookups, deletes, an
// out-of-range key in the middle — through one OpBatch frame and checks
// per-op results, sentinel identity across the wire, and that the tree
// stays auditable.
func TestBatchOverWire(t *testing.T) {
	tree, srv, cl := startServer(t, nil, Config{})
	defer cl.Close()
	defer shutdown(t, srv)
	ctx := context.Background()

	ops := []client.Op{
		client.InsertOp(10),
		client.InsertOp(20),
		client.InsertOp(bst.MaxKey + 1), // must fail alone, mid-batch
		client.InsertOp(30),
		client.LookupOp(20),
		client.DeleteOp(10),
		client.LookupOp(10),
		client.DeleteOp(99), // never inserted
	}
	res, err := cl.Do(ctx, ops)
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	want := []struct {
		ok  bool
		err error
	}{
		{true, nil},
		{true, nil},
		{false, bst.ErrKeyOutOfRange},
		{true, nil},
		{true, nil},
		{true, nil},
		{false, nil},
		{false, nil},
	}
	for i, w := range want {
		r := res[i]
		if w.err != nil {
			if !errors.Is(r.Err, w.err) {
				t.Fatalf("op %d: err = %v, want %v", i, r.Err, w.err)
			}
			continue
		}
		if r.Err != nil || r.OK != w.ok {
			t.Fatalf("op %d: = (%v, %v), want (%v, nil)", i, r.OK, r.Err, w.ok)
		}
	}
	if tree.Contains(10) || !tree.Contains(20) || !tree.Contains(30) {
		t.Fatal("tree contents disagree with batch results")
	}
	if err := tree.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	c := srv.Counters()
	if c.BatchOps != uint64(len(ops)) {
		t.Fatalf("Counters.BatchOps = %d, want %d", c.BatchOps, len(ops))
	}
	if c.OutOfRange != 1 {
		t.Fatalf("Counters.OutOfRange = %d, want 1", c.OutOfRange)
	}
}

// TestBatchCapacityMidBatchOverWire exhausts a tiny arena mid-batch: the
// overflowing slots answer StatusCapacity — surfacing as bst.ErrCapacity
// through errors.Is — while the ops that fit succeed, and the tree remains
// valid and consistent with the reported results.
func TestBatchCapacityMidBatchOverWire(t *testing.T) {
	tree, srv, cl0 := startServer(t, []bst.Option{bst.WithCapacity(64)}, Config{})
	defer cl0.Close()
	defer shutdown(t, srv)
	// A dedicated one-attempt client sees raw per-op outcomes instead of
	// retried ones.
	cl, err := client.Dial(client.Config{Addr: srv.Addr().String(), MaxAttempts: 1, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()

	ops := make([]client.Op, 64)
	for i := range ops {
		ops[i] = client.InsertOp(int64(i))
	}
	res, err := cl.Do(ctx, ops)
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	okN, capN := 0, 0
	for i, r := range res {
		switch {
		case r.Err == nil && r.OK:
			okN++
		case errors.Is(r.Err, bst.ErrCapacity):
			capN++
		default:
			t.Fatalf("op %d: unexpected result (%v, %v)", i, r.OK, r.Err)
		}
	}
	if okN == 0 || capN == 0 {
		t.Fatalf("want mixed outcomes, got ok=%d capacity=%d", okN, capN)
	}
	// The reported outcomes must agree with the tree, and the tree must
	// still satisfy its structural invariants.
	lookups := make([]client.Op, len(ops))
	for i := range ops {
		lookups[i] = client.LookupOp(ops[i].Key)
	}
	chk, err := cl.Do(ctx, lookups)
	if err != nil {
		t.Fatalf("lookup batch: %v", err)
	}
	for i := range res {
		if chk[i].Err != nil {
			t.Fatalf("lookup %d: %v", i, chk[i].Err)
		}
		if chk[i].OK != res[i].OK {
			t.Fatalf("key %d: present=%v but insert reported (%v, %v)", ops[i].Key, chk[i].OK, res[i].OK, res[i].Err)
		}
	}
	if err := tree.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if srv.Counters().CapacityErrs == 0 {
		t.Fatal("Counters.CapacityErrs = 0 after capacity failures")
	}
}

// TestBatchChunksAcrossFrames: Do transparently splits operation lists
// larger than wire.MaxBatchOps into several frames; results still land in
// caller order.
func TestBatchChunksAcrossFrames(t *testing.T) {
	tree, srv, cl := startServer(t, nil, Config{})
	defer cl.Close()
	defer shutdown(t, srv)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	ops := make([]client.Op, wire.MaxBatchOps+500)
	for i := range ops {
		ops[i] = client.InsertOp(int64(i))
	}
	res, err := cl.Do(ctx, ops)
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	for i, r := range res {
		if r.Err != nil || !r.OK {
			t.Fatalf("op %d: (%v, %v), want (true, nil)", i, r.OK, r.Err)
		}
	}
	if got := tree.Len(); got != len(ops) {
		t.Fatalf("Len = %d, want %d", got, len(ops))
	}
}

// TestPipelineOverWire exercises the asynchronous client: a window of
// inserts submitted without waiting, then lookups, with every future
// resolving to the synchronous call's answer.
func TestPipelineOverWire(t *testing.T) {
	tree, srv, cl := startServer(t, nil, Config{})
	defer cl.Close()
	defer shutdown(t, srv)
	ctx := context.Background()

	p, err := cl.NewPipeline(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	const n = 200
	futs := make([]*client.Future, 0, n)
	for i := 0; i < n; i++ {
		f, err := p.Submit(ctx, client.InsertOp(int64(i)))
		if err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
		futs = append(futs, f)
	}
	for i, f := range futs {
		ok, err := f.Wait(ctx)
		if err != nil || !ok {
			t.Fatalf("insert future %d = (%v, %v), want (true, nil)", i, ok, err)
		}
	}
	// Mixed kinds in one window, including a permanent per-op failure.
	fl, _ := p.Submit(ctx, client.LookupOp(7))
	fd, _ := p.Submit(ctx, client.DeleteOp(7))
	fbad, _ := p.Submit(ctx, client.LookupOp(bst.MaxKey+1))
	fl2, _ := p.Submit(ctx, client.LookupOp(7))
	if ok, err := fl.Wait(ctx); err != nil || !ok {
		t.Fatalf("lookup(7) = (%v, %v)", ok, err)
	}
	if ok, err := fd.Wait(ctx); err != nil || !ok {
		t.Fatalf("delete(7) = (%v, %v)", ok, err)
	}
	if _, err := fbad.Wait(ctx); !errors.Is(err, bst.ErrKeyOutOfRange) {
		t.Fatalf("lookup(MaxKey+1) err = %v, want ErrKeyOutOfRange", err)
	}
	if ok, err := fl2.Wait(ctx); err != nil || ok {
		t.Fatalf("lookup(7) after delete = (%v, %v), want (false, nil)", ok, err)
	}
	if got := tree.Len(); got != n-1 {
		t.Fatalf("Len = %d, want %d", got, n-1)
	}
	if err := tree.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

// TestPipelineFallbackAfterClose: futures stranded by a dead pipeline
// resolve through the pooled retry path instead of failing.
func TestPipelineFallbackAfterClose(t *testing.T) {
	_, srv, cl := startServer(t, nil, Config{})
	defer cl.Close()
	defer shutdown(t, srv)
	ctx := context.Background()

	p, err := cl.NewPipeline(ctx)
	if err != nil {
		t.Fatal(err)
	}
	f, err := p.Submit(ctx, client.InsertOp(123))
	if err != nil {
		t.Fatal(err)
	}
	p.Close() // flushes first, but the future may or may not be answered
	// If the flushed request executed before the teardown, the fallback
	// re-runs the insert and sees the key already present (OK=false) — the
	// usual at-least-once retry ambiguity. Either way no error surfaces and
	// the key must be in the tree.
	if _, err := f.Wait(ctx); err != nil {
		t.Fatalf("future after Close: %v", err)
	}
	if ok, err := cl.Lookup(ctx, 123); err != nil || !ok {
		t.Fatalf("lookup(123) after fallback = (%v, %v), want (true, nil)", ok, err)
	}
	if _, err := p.Submit(ctx, client.InsertOp(1)); !errors.Is(err, client.ErrPipelineClosed) {
		t.Fatalf("Submit after Close err = %v, want ErrPipelineClosed", err)
	}
}
