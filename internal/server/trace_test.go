package server

// The slow-op acceptance test: stall the WAL flusher's fsync under a
// sampled write and the slow-op log must finger wal_wait as the dominant
// phase — the "why was this PUT slow" answer an operator reads off
// /debug/rtrace without reconstructing the span tree by hand.

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/durable"
	"repro/internal/failpoint"
	"repro/internal/rtrace"
	"repro/internal/wal"
)

func TestSlowOpFsyncStall(t *testing.T) {
	fps := failpoint.NewSet()
	rec := rtrace.New(rtrace.Options{SampleEvery: 1, SlowOp: 10 * time.Millisecond})
	dur, err := durable.Open(t.TempDir(), durable.Options{
		Sync:       wal.SyncFsync,
		Failpoints: fps,
	})
	if err != nil {
		t.Fatalf("durable.Open: %v", err)
	}
	defer dur.Close()
	srv := New(Config{Store: dur, Trace: rec})
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())
	cl, err := client.Dial(client.Config{Addr: srv.Addr().String(), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()

	// Park the flusher just before its next fsync, issue the write, and
	// hold the stall well past the slow-op threshold. The insert cannot
	// ack until the fsync completes, so its wal_wait span absorbs the
	// entire stall.
	site := fps.Site(wal.FPFsync)
	site.StallNext()
	done := make(chan error, 1)
	go func() {
		ok, err := cl.Insert(ctx, 777)
		if err == nil && !ok {
			err = context.DeadlineExceeded // impossible shape; flag it
		}
		done <- err
	}()
	if !site.WaitStalled(5 * time.Second) {
		t.Fatal("flusher never reached the fsync failpoint")
	}
	time.Sleep(50 * time.Millisecond) // dwarf the 10ms threshold
	site.Release()
	if err := <-done; err != nil {
		t.Fatalf("stalled insert failed: %v", err)
	}

	var slow []rtrace.SlowOp
	deadline := time.Now().Add(2 * time.Second)
	for {
		if slow = rec.SlowOps(); len(slow) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no slow op retained after a 50ms fsync stall with a 10ms threshold")
		}
		time.Sleep(time.Millisecond)
	}
	so := slow[len(slow)-1]
	if so.Dominant != rtrace.KWALWait {
		t.Fatalf("dominant phase = %s, want wal_wait (op %d key %d dur %v)",
			so.DominantName(), so.Op, so.Key, time.Duration(so.Dur))
	}
	if so.Key != 777 {
		t.Fatalf("slow op key = %d, want 777", so.Key)
	}
	if time.Duration(so.Dur) < 40*time.Millisecond {
		t.Fatalf("slow op duration %v does not cover the stall", time.Duration(so.Dur))
	}

	// The admin surface serves it: /debug/rtrace names the dominant phase.
	rw := httptest.NewRecorder()
	req := httptest.NewRequest("GET", "/debug/rtrace", nil)
	srv.AdminHandler().ServeHTTP(rw, req)
	var body struct {
		Slow []struct {
			Dominant string `json:"dominant"`
			Key      int64  `json:"key"`
		} `json:"slow"`
	}
	if err := json.Unmarshal(rw.Body.Bytes(), &body); err != nil {
		t.Fatalf("/debug/rtrace: %v", err)
	}
	found := false
	for _, s := range body.Slow {
		if s.Key == 777 && s.Dominant == "wal_wait" {
			found = true
		}
	}
	if !found {
		t.Fatalf("/debug/rtrace slow log missing the stalled op: %s", rw.Body.String())
	}
}
