package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"repro/internal/durable"
	"repro/internal/metrics"
	"repro/internal/wal"
)

// durableStore is the extra surface a durability-wrapped store exposes;
// durable.Tree implements it. Checked by type assertion so a plain
// in-memory *bst.Tree still serves unchanged.
type durableStore interface {
	Checkpoint() (durable.CheckpointStats, error)
	WALStats() wal.Stats
	RecoveryStats() durable.RecoveryStats
}

// AdminHandler returns the server's operational HTTP surface:
//
//	GET /healthz     liveness — 200 while the process serves at all
//	                 (including during drain), with a tree-health body
//	GET /readyz      readiness — 200 only when the server is accepting
//	                 and should receive traffic; 503 while draining,
//	                 closed, or when reclamation is stalled
//	GET /metrics     Prometheus exposition: tree contention series plus
//	                 the server_* counters (shed, timeouts, drains, ...)
//	GET /debug/vars  the same snapshot as expvar-style JSON
//	POST /checkpoint force a durability checkpoint now (404 when the
//	                 store has no durability layer)
//
// Serve it on a side listener, separate from the data port, so health
// checks and scrapes are never subject to the data plane's admission
// control.
func (s *Server) AdminHandler() http.Handler {
	mux := http.NewServeMux()
	metricsH := metrics.Handler(func() []metrics.Source {
		return []metrics.Source{{Name: "serve", Registry: s.reg}}
	})
	mux.Handle("/metrics", metricsH)
	mux.Handle("/debug/vars", metricsH)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeHealth(w, http.StatusOK, "ok", s)
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		if err := s.Ready(); err != nil {
			writeHealth(w, http.StatusServiceUnavailable, err.Error(), s)
			return
		}
		writeHealth(w, http.StatusOK, "ready", s)
	})
	mux.HandleFunc("/checkpoint", func(w http.ResponseWriter, r *http.Request) {
		ds, ok := s.cfg.Store.(durableStore)
		if !ok {
			http.Error(w, "store has no durability layer", http.StatusNotFound)
			return
		}
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		stats, err := ds.Checkpoint()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(map[string]any{
			"wal_seq":         stats.WALSeq,
			"keys":            stats.Keys,
			"bytes":           stats.Bytes,
			"duration":        stats.Duration.String(),
			"snapshots_gc":    stats.SnapshotsGC,
			"wal_segments_gc": stats.SegmentsGC,
		})
	})
	mux.HandleFunc("/promote", func(w http.ResponseWriter, r *http.Request) {
		cl := s.cfg.Cluster
		if cl == nil {
			http.Error(w, "not part of a replication cluster", http.StatusNotFound)
			return
		}
		p, ok := cl.(promoter)
		if !ok {
			http.Error(w, "cluster node cannot be promoted", http.StatusNotFound)
			return
		}
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		term, err := p.Promote()
		if err != nil {
			// Promoting a leader is idempotent from the operator's view:
			// report the current state with a conflict code rather than
			// flapping.
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			w.WriteHeader(http.StatusConflict)
			json.NewEncoder(w).Encode(map[string]any{
				"error": err.Error(),
				"term":  term,
			})
			return
		}
		s.log.Info("promoted to leader", "term", term)
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(map[string]any{
			"role":   "leader",
			"term":   term,
			"leader": cl.LeaderAddr(),
		})
	})
	if rec := s.cfg.Trace; rec != nil {
		// Flight-recorder exports: raw span/slow-op JSON, and the same
		// spans as Chrome trace events (load in about://tracing, Perfetto).
		mux.HandleFunc("/debug/rtrace", rec.ServeJSON)
		mux.HandleFunc("/debug/rtrace/chrome", rec.ServeChrome)
	}
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprintln(w, "bstserve admin: /healthz /readyz /metrics /debug/vars /checkpoint /promote /debug/rtrace")
	})
	return mux
}

// promoter is the optional promotion surface of a Cluster (repl.Node's
// operator-driven failover entry point).
type promoter interface {
	Promote() (term uint64, err error)
}

// Ready reports whether the server should receive new traffic: nil when
// accepting, an explanatory error while draining or closed, and an error
// when the tree's reclamation is visibly wedged (a stalled reader freezing
// a growing retired backlog) — the one tree condition a load balancer
// should route away from before it becomes arena exhaustion.
func (s *Server) Ready() error {
	if s.closed.Load() {
		return fmt.Errorf("closed")
	}
	if s.draining.Load() {
		return fmt.Errorf("draining")
	}
	h := s.cfg.Store.Health()
	if h.StalledSlots > 0 && h.RetiredBacklog > 0 {
		return fmt.Errorf("reclamation stalled: %d slot(s) pinning the epoch, %d nodes backlogged",
			h.StalledSlots, h.RetiredBacklog)
	}
	// A follower whose heartbeat lease has lapsed is serving reads of
	// unknown staleness — a load balancer should route somewhere fresher
	// until it reconnects (or is promoted). During an automatic election
	// the state ("candidate", "holding_off") names why.
	if cl := s.cfg.Cluster; cl != nil && !cl.IsLeader() && cl.LeaseExpired() {
		if er, ok := cl.(electionReporter); ok {
			if st := er.ElectionState(); st != "" && st != "following" {
				return fmt.Errorf("follower lease expired (election state %s): leader unheard, applied_seq %d", st, cl.AppliedSeq())
			}
		}
		return fmt.Errorf("follower lease expired: leader unheard, applied_seq %d", cl.AppliedSeq())
	}
	return nil
}

// healthBody is the JSON document both health endpoints serve.
type healthBody struct {
	Status     string            `json:"status"`
	Draining   bool              `json:"draining"`
	Counters   Counters          `json:"counters"`
	Tree       treeHealth        `json:"tree"`
	Durability *durabilityHealth `json:"durability,omitempty"`
	Cluster    *clusterHealth    `json:"cluster,omitempty"`
}

// clusterHealth summarizes the replication control plane: who leads, how
// far this node has applied, and (on a leader) how far followers have
// acknowledged — the operator's promote/don't-promote dashboard. The two
// staleness fields quantify a follower's distance from its leader:
// AppliedLag is how many committed WAL records it has yet to apply, and
// LeaseRemainingMS is how much heartbeat lease is left before it would
// declare the leader lost.
type clusterHealth struct {
	Role             string `json:"role"`
	Term             uint64 `json:"term"`
	LeaderAddr       string `json:"leader_addr"`
	AppliedSeq       uint64 `json:"applied_seq"`
	AckedSeq         uint64 `json:"acked_seq"`
	AppliedLag       uint64 `json:"applied_lag"`
	LeaseRemainingMS int64  `json:"lease_remaining_ms"`
	Followers        int    `json:"followers"`
	LeaseExpired     bool   `json:"lease_expired"`
	// ElectionState is the failover state machine's position: "following",
	// "candidate", "holding_off", "promoted" (won an automatic election),
	// or "leading" (bootstrap/operator-promoted leader). Empty when the
	// cluster layer predates automatic elections.
	ElectionState string `json:"election_state,omitempty"`
	// HoldOffRemainingMS is how long this candidate still defers to
	// higher-ranked peers before self-promoting (0 when not holding off).
	HoldOffRemainingMS int64 `json:"holdoff_remaining_ms"`
	// Fenced marks a deposed leader that has not re-promoted: its
	// mutations answer StatusFenced until it rejoins or wins a new term.
	Fenced bool `json:"fenced"`
}

// electionReporter is the optional election surface of a Cluster
// (repl.Node implements it); the health body degrades gracefully without
// it.
type electionReporter interface {
	ElectionState() string
	HoldOffDeadline() time.Time
}

// durabilityHealth summarizes the WAL's progress for operators: how far
// acks have advanced (last_seq), how far durability has (durable_seq), and
// how much log a crash would replay (backlog since the last checkpoint).
type durabilityHealth struct {
	WALLastSeq    uint64 `json:"wal_last_seq"`
	WALDurableSeq uint64 `json:"wal_durable_seq"`
	WALSegments   int    `json:"wal_segments"`
	ReplayedOps   uint64 `json:"recovery_replayed_ops"`
	SnapshotKeys  uint64 `json:"recovery_snapshot_keys"`
}

type treeHealth struct {
	Algorithm      string `json:"algorithm"`
	Capacity       int    `json:"capacity_nodes"`
	Allocated      uint64 `json:"allocated_nodes"`
	Recycled       uint64 `json:"recycled_nodes"`
	Reclaim        bool   `json:"reclaim_enabled"`
	StalledSlots   int    `json:"stalled_slots"`
	RetiredBacklog int    `json:"retired_backlog_nodes"`
}

func writeHealth(w http.ResponseWriter, code int, status string, s *Server) {
	h := s.cfg.Store.Health()
	body := healthBody{
		Status:   status,
		Draining: s.draining.Load(),
		Counters: s.Counters(),
		Tree: treeHealth{
			Algorithm:      h.Algorithm.String(),
			Capacity:       h.Capacity,
			Allocated:      h.NodesAllocated,
			Recycled:       h.NodesRecycled,
			Reclaim:        h.ReclaimEnabled,
			StalledSlots:   h.StalledSlots,
			RetiredBacklog: h.RetiredBacklog,
		},
	}
	if ds, ok := s.cfg.Store.(durableStore); ok {
		ws := ds.WALStats()
		rs := ds.RecoveryStats()
		body.Durability = &durabilityHealth{
			WALLastSeq:    ws.LastSeq,
			WALDurableSeq: ws.DurableSeq,
			WALSegments:   ws.Segments,
			ReplayedOps:   rs.ReplayedOps,
			SnapshotKeys:  rs.SnapshotKeys,
		}
	}
	if cl := s.cfg.Cluster; cl != nil {
		role := "follower"
		if cl.IsLeader() {
			role = "leader"
		}
		var lag uint64
		if commit, applied := cl.LeaderCommit(), cl.AppliedSeq(); commit > applied {
			lag = commit - applied
		}
		body.Cluster = &clusterHealth{
			Role:             role,
			Term:             cl.Term(),
			LeaderAddr:       cl.LeaderAddr(),
			AppliedSeq:       cl.AppliedSeq(),
			AckedSeq:         cl.AckedSeq(),
			AppliedLag:       lag,
			LeaseRemainingMS: cl.LeaseRemaining().Milliseconds(),
			Followers:        cl.Followers(),
			LeaseExpired:     cl.LeaseExpired(),
		}
		if er, ok := cl.(electionReporter); ok {
			body.Cluster.ElectionState = er.ElectionState()
			if d := er.HoldOffDeadline(); !d.IsZero() {
				if rem := time.Until(d); rem > 0 {
					body.Cluster.HoldOffRemainingMS = rem.Milliseconds()
				}
			}
		}
		if f, ok := cl.(fencer); ok {
			body.Cluster.Fenced = f.Fenced()
		}
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(body)
}
