package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/durable"
	"repro/internal/wal"
)

// startDurableServer builds a durable store + server + client on an
// ephemeral port.
func startDurableServer(t *testing.T, dir string, cfg Config) (*durable.Tree, *Server, *client.Client) {
	t.Helper()
	dur, err := durable.Open(dir, durable.Options{Sync: wal.SyncFsync})
	if err != nil {
		t.Fatalf("durable.Open: %v", err)
	}
	cfg.Store = dur
	srv := New(cfg)
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	cl, err := client.Dial(client.Config{Addr: srv.Addr().String(), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return dur, srv, cl
}

// TestDurableStoreOverWire serves a durable.Tree through the unchanged
// protocol: mutations ack only after the WAL fsync, survive a simulated
// crash, and the /checkpoint admin endpoint cuts a snapshot on demand.
func TestDurableStoreOverWire(t *testing.T) {
	dir := t.TempDir()
	dur, srv, cl := startDurableServer(t, dir, Config{})
	ctx := context.Background()

	for _, k := range []int64{5, 10, 15, 20} {
		if ok, err := cl.Insert(ctx, k); err != nil || !ok {
			t.Fatalf("Insert(%d) = (%v, %v)", k, ok, err)
		}
	}
	if ok, err := cl.Delete(ctx, 10); err != nil || !ok {
		t.Fatalf("Delete(10) = (%v, %v)", ok, err)
	}
	// Batch path through the durable accessor.
	ops := []client.Op{client.InsertOp(100), client.InsertOp(200), client.InsertOp(300)}
	res, err := cl.Do(ctx, ops)
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	for i, r := range res {
		if r.Err != nil || !r.OK {
			t.Fatalf("batch op %d = %+v", i, r)
		}
	}

	// /checkpoint via the admin surface.
	admin := httptest.NewServer(srv.AdminHandler())
	resp, err := http.Post(admin.URL+"/checkpoint", "", nil)
	if err != nil {
		t.Fatalf("POST /checkpoint: %v", err)
	}
	var ck struct {
		Keys   uint64 `json:"keys"`
		WALSeq uint64 `json:"wal_seq"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ck); err != nil || resp.StatusCode != 200 {
		t.Fatalf("POST /checkpoint = %d (%v)", resp.StatusCode, err)
	}
	resp.Body.Close()
	if ck.Keys != 6 {
		t.Fatalf("checkpoint covered %d keys, want 6", ck.Keys)
	}
	// GET is rejected, and health reports the durability section.
	if resp, _ := http.Get(admin.URL + "/checkpoint"); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /checkpoint = %d, want 405", resp.StatusCode)
	}
	hresp, err := http.Get(admin.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Durability *struct {
			WALLastSeq    uint64 `json:"wal_last_seq"`
			WALDurableSeq uint64 `json:"wal_durable_seq"`
		} `json:"durability"`
	}
	if err := json.NewDecoder(hresp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	admin.Close()
	if health.Durability == nil {
		t.Fatal("healthz has no durability section for a durable store")
	}
	if health.Durability.WALDurableSeq != health.Durability.WALLastSeq {
		t.Fatalf("under -sync fsync durable_seq (%d) must equal last_seq (%d)",
			health.Durability.WALDurableSeq, health.Durability.WALLastSeq)
	}

	// More acked ops after the checkpoint, then crash without them.
	if ok, err := cl.Insert(ctx, 400); err != nil || !ok {
		t.Fatalf("Insert(400) = (%v, %v)", ok, err)
	}
	cl.Close()
	shutdown(t, srv)
	if err := dur.Crash(); err != nil {
		t.Fatalf("Crash: %v", err)
	}

	// Reopen: snapshot + WAL tail reconstruct every acked mutation.
	dur2, err := durable.Open(dir, durable.Options{Sync: wal.SyncFsync})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer dur2.Close()
	rs := dur2.RecoveryStats()
	if rs.SnapshotKeys != 6 || rs.ReplayedOps != 1 {
		t.Fatalf("RecoveryStats = %+v, want 6 snapshot keys + 1 replayed op", rs)
	}
	for _, k := range []int64{5, 15, 20, 100, 200, 300, 400} {
		if !dur2.Contains(k) {
			t.Fatalf("acked key %d lost across crash", k)
		}
	}
	if dur2.Contains(10) {
		t.Fatal("deleted key 10 resurrected")
	}
}

// TestInMemoryStoreHasNoCheckpoint: a plain tree behind the same server
// answers 404 on /checkpoint and omits the durability health section.
func TestInMemoryStoreHasNoCheckpoint(t *testing.T) {
	_, srv, cl := startServer(t, nil, Config{})
	defer cl.Close()
	defer shutdown(t, srv)
	admin := httptest.NewServer(srv.AdminHandler())
	defer admin.Close()
	resp, err := http.Post(admin.URL+"/checkpoint", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("POST /checkpoint on in-memory store = %d, want 404", resp.StatusCode)
	}
	hresp, err := http.Get(admin.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	var health map[string]any
	if err := json.NewDecoder(hresp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if _, ok := health["durability"]; ok {
		t.Fatal("in-memory health body carries a durability section")
	}
}

// TestDurableDrainFlushesAndCheckpoints: the bstserve shutdown sequence —
// server drain, then durable Close — leaves a data dir that recovers with
// zero WAL replay (everything checkpointed).
func TestDurableDrainFlushesAndCheckpoints(t *testing.T) {
	dir := t.TempDir()
	dur, srv, cl := startDurableServer(t, dir, Config{})
	ctx := context.Background()
	for k := int64(0); k < 25; k++ {
		if _, err := cl.Insert(ctx, k); err != nil {
			t.Fatal(err)
		}
	}
	cl.Close()
	ctx2, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx2); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := dur.Close(); err != nil {
		t.Fatalf("durable Close: %v", err)
	}

	dur2, err := durable.Open(dir, durable.Options{Sync: wal.SyncFsync})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer dur2.Close()
	rs := dur2.RecoveryStats()
	if rs.SnapshotKeys != 25 || rs.ReplayedOps != 0 {
		t.Fatalf("clean shutdown should leave no replay: %+v", rs)
	}
}
