package server

import (
	"context"
	"errors"
	"time"

	bst "repro"
	"repro/internal/rtrace"
	"repro/internal/wire"
)

// AggregateStore is the optional order-statistics capability a Store may
// offer. *bst.Tree built with bst.WithOrderStatistics satisfies it, and
// durable.Tree forwards to its underlying tree (aggregates are reads —
// nothing to log). A store without it answers every OpAggregate with
// StatusNoIndex, discovered by the same type-assertion idiom the server
// already uses for LastSeq.
type AggregateStore interface {
	Rank(key int64, c bst.Consistency) (int, error)
	Select(i int, c bst.Consistency) (int64, error)
	CountRange(lo, hi int64, c bst.Consistency) (int, error)
	SumRange(lo, hi int64, c bst.Consistency) (int64, error)
}

// dispatchAggregate is dispatch for OpAggregate frames: decode the tail,
// pass admission once, and answer through the aggregate response shape.
// Aggregates are reads, so there is no role gate — any replica serves
// them, exactly like lookups — and no WAL ticket. poisoned reports a
// handler panic, as everywhere.
func (s *Server) dispatchAggregate(req wire.Request, frame []byte, tr *rtrace.Conn) (resp wire.AggregateResponse, poisoned bool) {
	resp.ID = req.ID
	start := time.Now()
	if s.draining.Load() {
		s.stats.drainRejected.Add(1)
		resp.Status = wire.StatusDraining
		return resp, false
	}
	aq, err := wire.DecodeAggregate(frame)
	if err != nil {
		// The frame boundary held; only the aggregate tail is malformed,
		// so the connection survives (same contract as a bad batch tail).
		s.stats.badRequests.Add(1)
		resp.Status = wire.StatusBadRequest
		return resp, false
	}
	tr.StartRequest(req.Trace, wire.OpAggregate, aq.Key)

	agg, can := s.cfg.Store.(AggregateStore)
	if !can {
		s.stats.noIndex.Add(1)
		resp.Status = wire.StatusNoIndex
		return resp, false
	}

	select {
	case s.sem <- struct{}{}:
	default:
		if s.cfg.AdmissionWait <= 0 {
			s.stats.shed.Add(1)
			resp.Status = wire.StatusOverloaded
			return resp, false
		}
		qStart := time.Now()
		t := time.NewTimer(s.cfg.AdmissionWait)
		select {
		case s.sem <- struct{}{}:
			t.Stop()
			tr.Span(rtrace.KQueueWait, qStart, 0)
		case <-t.C:
			s.stats.shed.Add(1)
			resp.Status = wire.StatusOverloaded
			return resp, false
		}
	}
	s.stats.inFlight.Add(1)
	defer func() {
		s.stats.inFlight.Add(-1)
		<-s.sem
		if p := recover(); p != nil {
			s.stats.panics.Add(1)
			s.log.Error("panic serving aggregate", "kind", wire.AggName(aq.Kind), "key", aq.Key,
				"conn", tr.ID(), "trace", tr.Context().TraceID, "panic", p)
			resp = wire.AggregateResponse{ID: req.ID, Status: wire.StatusInternal}
			poisoned = true
		}
	}()
	s.stats.requests.Add(1)
	s.stats.aggregates.Add(1)

	if fp := s.cfg.Failpoints; fp != nil {
		fp.Hit(FPHandle)
		if fp.Hit(FPPanic) {
			panic("failpoint " + FPPanic)
		}
	}

	budget := s.cfg.DefaultDeadline
	if req.DeadlineMS > 0 {
		budget = time.Duration(req.DeadlineMS) * time.Millisecond
	}
	ctx, cancel := context.WithDeadline(context.Background(), start.Add(budget))
	defer cancel()
	if ctx.Err() != nil {
		s.stats.timeouts.Add(1)
		resp.Status = wire.StatusDeadlineExceeded
		return resp, false
	}

	cons := bst.BoundedStale(aq.MaxDirty)
	if aq.Mode == wire.AggModeExact {
		cons = bst.Exact
	}
	opStart := time.Now()
	var value int64
	switch aq.Kind {
	case wire.AggRank:
		var r int
		r, err = agg.Rank(aq.Key, cons)
		value = int64(r)
	case wire.AggSelect:
		value, err = agg.Select(int(aq.Key), cons)
	case wire.AggCount:
		var n int
		n, err = agg.CountRange(aq.Key, aq.To, cons)
		value = int64(n)
	case wire.AggSum:
		value, err = agg.SumRange(aq.Key, aq.To, cons)
	}
	tr.Span(rtrace.KTreeOp, opStart, aq.Key)
	switch {
	case err == nil:
		resp.Status, resp.Value = wire.StatusOK, value
	case errors.Is(err, bst.ErrNoOrderStats):
		s.stats.noIndex.Add(1)
		resp.Status = wire.StatusNoIndex
	case errors.Is(err, bst.ErrSelectOutOfRange):
		s.stats.outOfRange.Add(1)
		resp.Status = wire.StatusKeyOutOfRange
	default:
		s.stats.badRequests.Add(1)
		resp.Status = wire.StatusBadRequest
	}
	return resp, false
}
