package workload

import (
	"testing"
)

func TestMixPresetsValid(t *testing.T) {
	for _, m := range Mixes {
		if !m.Valid() {
			t.Fatalf("preset %q does not sum to 100", m.Name)
		}
	}
	if len(Mixes) != 3 {
		t.Fatalf("paper defines 3 workloads, have %d", len(Mixes))
	}
}

func TestMixByName(t *testing.T) {
	for _, name := range []string{"write-dominated", "mixed", "read-dominated"} {
		if _, err := MixByName(name); err != nil {
			t.Fatalf("MixByName(%q): %v", name, err)
		}
	}
	if _, err := MixByName("nope"); err == nil {
		t.Fatal("unknown mix accepted")
	}
}

func TestSplitMixDeterminism(t *testing.T) {
	a, b := NewSplitMix64(42), NewSplitMix64(42)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewSplitMix64(43)
	same := 0
	a = NewSplitMix64(42)
	for i := 0; i < 1000; i++ {
		if a.Next() == c.Next() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds collided %d/1000 times", same)
	}
}

func TestGeneratorMixProportions(t *testing.T) {
	const n = 200000
	for _, mix := range Mixes {
		g := NewGenerator(mix, 1000, 7)
		var counts [3]int
		for i := 0; i < n; i++ {
			op, k := g.Next()
			counts[op]++
			if k < 0 || k >= 1000 {
				t.Fatalf("key %d out of range", k)
			}
		}
		check := func(got int, wantPct int, name string) {
			gotPct := float64(got) / n * 100
			if diff := gotPct - float64(wantPct); diff > 1.0 || diff < -1.0 {
				t.Fatalf("%s/%s: got %.2f%%, want %d%%", mix.Name, name, gotPct, wantPct)
			}
		}
		check(counts[OpSearch], mix.Search, "search")
		check(counts[OpInsert], mix.Insert, "insert")
		check(counts[OpDelete], mix.Delete_, "delete")
	}
}

func TestGeneratorKeyCoverage(t *testing.T) {
	g := NewGenerator(Mixed, 64, 3)
	seen := map[int64]bool{}
	for i := 0; i < 20000; i++ {
		seen[g.Key()] = true
	}
	if len(seen) != 64 {
		t.Fatalf("uniform draw covered %d/64 keys", len(seen))
	}
}

func TestZipfSkew(t *testing.T) {
	g := NewZipfGenerator(Mixed, 10000, 9, 1.2)
	counts := map[int64]int{}
	const n = 100000
	for i := 0; i < n; i++ {
		counts[g.Key()]++
	}
	// The hottest key must be drawn far more often than uniform (n/10000=10).
	maxCount := 0
	for _, c := range counts {
		if c > maxCount {
			maxCount = c
		}
	}
	if maxCount < 100 {
		t.Fatalf("zipf hottest key drawn %d times; distribution looks uniform", maxCount)
	}
}

func TestPrefillerDeterministicHalf(t *testing.T) {
	p := Prefiller{KeyRange: 10000, Seed: 5}
	set1 := map[int64]bool{}
	n1 := p.Fill(func(k int64) bool { set1[k] = true; return true })
	set2 := map[int64]bool{}
	n2 := p.Fill(func(k int64) bool { set2[k] = true; return true })
	if n1 != n2 || len(set1) != len(set2) {
		t.Fatal("prefill not deterministic")
	}
	if n1 < 4500 || n1 > 5500 {
		t.Fatalf("prefill inserted %d of 10000, want ≈ half", n1)
	}
	for k := range set1 {
		if !set2[k] {
			t.Fatal("prefill key sets differ")
		}
	}
}

func TestInvalidInputsPanic(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("bad mix", func() { NewGenerator(Mix{Search: 50, Insert: 10, Delete_: 10}, 10, 1) })
	mustPanic("bad range", func() { NewGenerator(Mixed, 0, 1) })
}
