// Package workload generates the operation streams of the paper's
// evaluation (Section 4): a key range, an operation mix, and a per-thread
// deterministic random source.
//
// The paper's three workload distributions are provided as presets:
//
//   - write-dominated: 0% search, 50% insert, 50% delete
//   - mixed:          70% search, 20% insert, 10% delete
//   - read-dominated:  90% search,  9% insert,  1% delete
//
// Keys are drawn uniformly from the key range by default; a Zipf option
// provides a skewed draw for contention ablations beyond the paper.
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/keys"
)

// OpKind enumerates dictionary operations.
type OpKind uint8

const (
	OpSearch OpKind = iota
	OpInsert
	OpDelete
)

func (k OpKind) String() string {
	switch k {
	case OpSearch:
		return "search"
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	default:
		return fmt.Sprintf("OpKind(%d)", uint8(k))
	}
}

// Mix is an operation distribution in percent. Fields must sum to 100.
type Mix struct {
	Name                    string
	Search, Insert, Delete_ int // Delete_ avoids colliding with the method name space in docs
}

// The paper's three workload mixes.
var (
	WriteDominated = Mix{Name: "write-dominated", Search: 0, Insert: 50, Delete_: 50}
	Mixed          = Mix{Name: "mixed", Search: 70, Insert: 20, Delete_: 10}
	ReadDominated  = Mix{Name: "read-dominated", Search: 90, Insert: 9, Delete_: 1}
)

// Mixes lists the paper's workloads in presentation order (Figure 4's
// columns).
var Mixes = []Mix{WriteDominated, Mixed, ReadDominated}

// MixByName resolves a preset by its name.
func MixByName(name string) (Mix, error) {
	for _, m := range Mixes {
		if m.Name == name {
			return m, nil
		}
	}
	return Mix{}, fmt.Errorf("unknown workload %q (want write-dominated, mixed or read-dominated)", name)
}

// Valid reports whether the mix sums to 100%.
func (m Mix) Valid() bool {
	return m.Search+m.Insert+m.Delete_ == 100 && m.Search >= 0 && m.Insert >= 0 && m.Delete_ >= 0
}

// SplitMix64 is a tiny, fast, high-quality PRNG (Steele et al.), one
// independent instance per worker so generation never synchronizes.
type SplitMix64 struct{ x uint64 }

// NewSplitMix64 seeds a generator; distinct seeds give independent streams.
func NewSplitMix64(seed uint64) *SplitMix64 { return &SplitMix64{x: seed} }

// Next returns the next 64 random bits.
func (s *SplitMix64) Next() uint64 {
	s.x += 0x9e3779b97f4a7c15
	z := s.x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform value in [0, n).
func (s *SplitMix64) Intn(n int64) int64 {
	return int64(s.Next() % uint64(n)) // negligible modulo bias for n ≪ 2⁶⁴
}

// Generator produces (operation, key) pairs for one worker.
type Generator struct {
	rng      *SplitMix64
	mix      Mix
	keyRange int64
	zipf     *rand.Zipf // non-nil when the skewed draw is enabled
}

// NewGenerator creates a worker generator. keyRange is the paper's
// "maximum tree size" parameter: keys are drawn from [0, keyRange).
func NewGenerator(mix Mix, keyRange int64, seed uint64) *Generator {
	if !mix.Valid() {
		panic(fmt.Sprintf("workload: invalid mix %+v", mix))
	}
	if keyRange <= 0 {
		panic("workload: keyRange must be positive")
	}
	return &Generator{rng: NewSplitMix64(seed), mix: mix, keyRange: keyRange}
}

// NewZipfGenerator creates a generator whose keys follow a Zipf
// distribution with parameter s > 1 (heavier skew for larger s).
func NewZipfGenerator(mix Mix, keyRange int64, seed uint64, s float64) *Generator {
	g := NewGenerator(mix, keyRange, seed)
	src := rand.New(rand.NewSource(int64(seed)))
	g.zipf = rand.NewZipf(src, s, 1, uint64(keyRange-1))
	return g
}

// Next returns the next operation and its user key.
func (g *Generator) Next() (OpKind, int64) {
	r := int(g.rng.Next() % 100)
	var op OpKind
	switch {
	case r < g.mix.Search:
		op = OpSearch
	case r < g.mix.Search+g.mix.Insert:
		op = OpInsert
	default:
		op = OpDelete
	}
	return op, g.Key()
}

// Key draws a key according to the configured distribution.
func (g *Generator) Key() int64 {
	if g.zipf != nil {
		return int64(g.zipf.Uint64())
	}
	return g.rng.Intn(g.keyRange)
}

// Prefiller inserts keys until a set holds about half the key range — the
// paper pre-populates trees before measuring so steady-state size is
// range/2 under balanced insert/delete mixes.
type Prefiller struct {
	KeyRange int64
	Seed     uint64
}

// Fill inserts each key of the range with probability ½ using the given
// insert function, returning the number inserted. Deterministic in Seed.
// Keys are inserted in a shuffled order: sorted insertion would build a
// degenerate O(n)-deep spine in the unbalanced trees, a shape the paper's
// random pre-population never produces.
func (p Prefiller) Fill(insert func(key int64) bool) int {
	rng := NewSplitMix64(p.Seed ^ 0xdeadbeefcafef00d)
	selected := make([]int64, 0, p.KeyRange/2+p.KeyRange/8)
	for k := int64(0); k < p.KeyRange; k++ {
		if rng.Next()&1 == 0 {
			selected = append(selected, k)
		}
	}
	// Fisher–Yates with the same deterministic stream.
	for i := len(selected) - 1; i > 0; i-- {
		j := rng.Intn(int64(i + 1))
		selected[i], selected[j] = selected[j], selected[i]
	}
	n := 0
	for _, k := range selected {
		if insert(k) {
			n++
		}
	}
	return n
}

// MapKey converts a user key to the internal key space (convenience
// re-export so harness code needs only this package).
func MapKey(k int64) uint64 { return keys.Map(k) }
