package wire

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/rtrace"
)

// Aggregate (order-statistics) frames. An OpAggregate request reuses the
// 21-byte base request header — the base Key field carries the query's
// primary operand (the rank key, the range's low bound, or the select
// index) — and extends it with an 18-byte tail:
//
//	kind     uint8   // AggRank | AggSelect | AggCount | AggSum
//	mode     uint8   // AggModeStale | AggModeExact
//	maxDirty uint64  // staleness budget; meaningful in stale mode only
//	to       int64   // range high bound (count/sum); ignored otherwise
//
// The response is a single int64 (a rank, a count, a sum, or a selected
// key), which the generic Response shape cannot carry, so aggregates get
// a dedicated response codec: the 10-byte response base (id, status, ok)
// followed by the value — present only when the status is StatusOK, like
// the batch response's per-op tail. The decoder is picked by the caller
// (the client knows which op it sent on this id), exactly as with
// DecodeBatchResponse.

// Aggregate query kinds.
const (
	AggRank   uint8 = 1 // # keys strictly below Key
	AggSelect uint8 = 2 // the Key-th smallest key (0-based)
	AggCount  uint8 = 3 // # keys in [Key, To], inclusive
	AggSum    uint8 = 4 // sum of keys in [Key, To], inclusive
)

// Aggregate consistency modes.
const (
	AggModeStale uint8 = 0 // bounded-stale: answer lags ≤ MaxDirty mutations
	AggModeExact uint8 = 1 // exact: linearized at the query's refresh point
)

// AggName returns a human-readable aggregate kind name.
func AggName(kind uint8) string {
	switch kind {
	case AggRank:
		return "rank"
	case AggSelect:
		return "select"
	case AggCount:
		return "count"
	case AggSum:
		return "sum"
	default:
		return fmt.Sprintf("agg(%d)", kind)
	}
}

// ErrBadAggregate flags an aggregate frame whose lengths parse but whose
// kind or mode byte names nothing.
var ErrBadAggregate = errors.New("wire: bad aggregate kind or mode")

const aggTailLen = 1 + 1 + 8 + 8 // kind, mode, maxDirty, to

// AggregateRequest is one decoded OpAggregate frame.
type AggregateRequest struct {
	ID         uint64
	DeadlineMS uint32
	Kind       uint8
	Mode       uint8
	MaxDirty   uint64 // AggModeStale only
	Key        int64  // rank key, range low bound, or select index
	To         int64  // AggCount/AggSum only: range high bound
	Trace      rtrace.Context
}

// AppendAggregateRequest appends q's payload encoding to dst and returns
// it. A non-zero Trace sets TraceFlag on the op byte, as everywhere.
func AppendAggregateRequest(dst []byte, q AggregateRequest) []byte {
	dst = binary.BigEndian.AppendUint64(dst, q.ID)
	op := OpAggregate
	traced := q.Trace != (rtrace.Context{})
	if traced {
		op |= TraceFlag
	}
	dst = append(dst, op)
	dst = binary.BigEndian.AppendUint32(dst, q.DeadlineMS)
	dst = binary.BigEndian.AppendUint64(dst, uint64(q.Key))
	if traced {
		dst = rtrace.AppendContext(dst, q.Trace)
	}
	dst = append(dst, q.Kind, q.Mode)
	dst = binary.BigEndian.AppendUint64(dst, q.MaxDirty)
	dst = binary.BigEndian.AppendUint64(dst, uint64(q.To))
	return dst
}

// DecodeAggregate decodes a full OpAggregate request frame (base header
// plus tail). The tail length is exact: trailing bytes are a framing
// error, like the batch decoder.
func DecodeAggregate(frame []byte) (AggregateRequest, error) {
	var q AggregateRequest
	if len(frame) < reqBaseLen {
		return q, ErrTruncated
	}
	q.ID = binary.BigEndian.Uint64(frame[0:8])
	op := frame[8]
	q.DeadlineMS = binary.BigEndian.Uint32(frame[9:13])
	q.Key = int64(binary.BigEndian.Uint64(frame[13:21]))
	off := reqBaseLen
	if op&TraceFlag != 0 {
		op &^= TraceFlag
		tc, ok := rtrace.DecodeContext(frame[off:])
		if !ok {
			return q, ErrTruncated
		}
		q.Trace = tc
		off += rtrace.ContextLen
	}
	if op != OpAggregate {
		return q, fmt.Errorf("%w: op %d is not aggregate", ErrBadAggregate, op)
	}
	if len(frame) != off+aggTailLen {
		return q, ErrTruncated
	}
	q.Kind = frame[off]
	q.Mode = frame[off+1]
	q.MaxDirty = binary.BigEndian.Uint64(frame[off+2 : off+10])
	q.To = int64(binary.BigEndian.Uint64(frame[off+10 : off+18]))
	if q.Kind < AggRank || q.Kind > AggSum {
		return q, fmt.Errorf("%w: kind %d", ErrBadAggregate, q.Kind)
	}
	if q.Mode != AggModeStale && q.Mode != AggModeExact {
		return q, fmt.Errorf("%w: mode %d", ErrBadAggregate, q.Mode)
	}
	return q, nil
}

// AggregateResponse is one decoded OpAggregate response frame. Value is
// meaningful only when Status is StatusOK.
type AggregateResponse struct {
	ID     uint64
	Status Status
	Value  int64
}

// AppendAggregateResponse appends p's payload encoding to dst and returns
// it: the response base (ok mirrors Status == StatusOK) plus the int64
// value, present only on success.
func AppendAggregateResponse(dst []byte, p AggregateResponse) []byte {
	dst = binary.BigEndian.AppendUint64(dst, p.ID)
	dst = append(dst, uint8(p.Status))
	var ok byte
	if p.Status == StatusOK {
		ok = 1
	}
	dst = append(dst, ok)
	if p.Status == StatusOK {
		dst = binary.BigEndian.AppendUint64(dst, uint64(p.Value))
	}
	return dst
}

// DecodeAggregateResponse decodes an OpAggregate response payload. The
// caller knows the request it sent on this id was an aggregate, exactly
// as with DecodeBatchResponse.
func DecodeAggregateResponse(frame []byte) (AggregateResponse, error) {
	var p AggregateResponse
	if len(frame) < respBaseLen {
		return p, ErrTruncated
	}
	p.ID = binary.BigEndian.Uint64(frame[0:8])
	p.Status = Status(frame[8])
	if p.Status == StatusOK {
		if len(frame) != respBaseLen+8 {
			return p, ErrTruncated
		}
		p.Value = int64(binary.BigEndian.Uint64(frame[respBaseLen:]))
		return p, nil
	}
	if len(frame) != respBaseLen {
		return p, ErrTruncated
	}
	return p, nil
}
