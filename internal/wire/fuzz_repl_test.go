package wire

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/rtrace"
)

// tracedCtx is a sampled trace extension for seed frames.
var tracedCtx = rtrace.Context{TraceID: 0xdecafbad, SpanID: 21, Flags: rtrace.FlagSampled}

// Fuzz targets for the replication frame decoders, holding them to the
// same two properties as the data-plane targets: never panic or
// over-allocate on arbitrary bytes, and on accept be consistent with the
// encoder (decode∘encode∘decode is the identity).

// replDecodeErrOK reports whether a replication decoder's rejection is one
// of the declared error classes.
func replDecodeErrOK(err error) bool {
	return errors.Is(err, ErrTruncated) || errors.Is(err, ErrWrongKind) || errors.Is(err, ErrBadReplFrame)
}

func FuzzDecodeReplSubscribe(f *testing.F) {
	f.Add(AppendReplSubscribe(nil, Subscribe{FromSeq: 42, Term: 3}))
	f.Add(AppendReplSubscribe(nil, Subscribe{}))
	f.Add(AppendReplSubscribe(nil, Subscribe{FromSeq: 1})[:9])
	f.Add(AppendReplSubscribe(nil, Subscribe{FromSeq: 5, Term: 2, Trace: tracedCtx, TraceSeq: 5}))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeReplSubscribe(data)
		if err != nil {
			if !replDecodeErrOK(err) {
				t.Fatalf("DecodeReplSubscribe: unexpected error class %v", err)
			}
			return
		}
		s2, err := DecodeReplSubscribe(AppendReplSubscribe(nil, s))
		if err != nil {
			t.Fatalf("re-decode of re-encoded subscribe: %v", err)
		}
		if s2 != s {
			t.Fatalf("round trip changed the subscribe: %+v -> %+v", s, s2)
		}
	})
}

func FuzzDecodeReplFrames(f *testing.F) {
	f.Add(AppendReplFrames(nil, FrameBatch{Term: 1, CommitSeq: 9, Addr: "127.0.0.1:9000"}))
	f.Add(AppendReplFrames(nil, FrameBatch{Term: 2, CommitSeq: 10, Addr: "h:1", N: 1, Frames: make([]byte, 25)}))
	f.Add(AppendReplFrames(nil, FrameBatch{Addr: ""})[:18])
	f.Add(AppendReplFrames(nil, FrameBatch{
		Term: 3, CommitSeq: 11, Addr: "h:2", N: 1, Frames: make([]byte, 25),
		Trace: tracedCtx, TraceSeq: 11,
	}))
	f.Add(AppendReplFrames(nil, FrameBatch{Term: 3, Addr: "h:2", Trace: tracedCtx})[:12])
	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := DecodeReplFrames(data)
		if err != nil {
			if !replDecodeErrOK(err) {
				t.Fatalf("DecodeReplFrames: unexpected error class %v", err)
			}
			return
		}
		if len(b.Frames) > len(data) {
			t.Fatalf("decoder conjured %d frame bytes from %d input bytes", len(b.Frames), len(data))
		}
		b2, err := DecodeReplFrames(AppendReplFrames(nil, b))
		if err != nil {
			t.Fatalf("re-decode of re-encoded frame batch: %v", err)
		}
		if b2.Term != b.Term || b2.CommitSeq != b.CommitSeq || b2.Addr != b.Addr ||
			b2.N != b.N || !reflect.DeepEqual(b2.Frames, b.Frames) ||
			b2.Trace != b.Trace || b2.TraceSeq != b.TraceSeq {
			t.Fatalf("round trip changed the frame batch: %+v -> %+v", b, b2)
		}
	})
}

func FuzzDecodeReplAck(f *testing.F) {
	f.Add(AppendReplAck(nil, Ack{AppliedSeq: 100, DurableSeq: 90}))
	f.Add(AppendReplAck(nil, Ack{}))
	f.Add(AppendReplAck(nil, Ack{AppliedSeq: 7})[:10])
	f.Add(AppendReplAck(nil, Ack{AppliedSeq: 12, DurableSeq: 12, Trace: tracedCtx, TraceSeq: 12}))
	// Term-carrying acks, and the legacy 16-byte body (no term field) that
	// must still decode with Term 0 — the term is the last 8 bytes, so the
	// truncation drops exactly it.
	f.Add(AppendReplAck(nil, Ack{AppliedSeq: 50, DurableSeq: 50, Term: 7}))
	full := AppendReplAck(nil, Ack{AppliedSeq: 8, DurableSeq: 8, Term: 3})
	f.Add(full[:len(full)-8])
	f.Fuzz(func(t *testing.T, data []byte) {
		a, err := DecodeReplAck(data)
		if err != nil {
			if !replDecodeErrOK(err) {
				t.Fatalf("DecodeReplAck: unexpected error class %v", err)
			}
			return
		}
		a2, err := DecodeReplAck(AppendReplAck(nil, a))
		if err != nil {
			t.Fatalf("re-decode of re-encoded ack: %v", err)
		}
		if a2 != a {
			t.Fatalf("round trip changed the ack: %+v -> %+v", a, a2)
		}
	})
}

func FuzzDecodeReplStatus(f *testing.F) {
	f.Add(AppendReplPeerStatus(nil, PeerStatus{
		Term: 3, IsLeader: true, Priority: 10, AppliedSeq: 500,
		Advertise: "10.0.0.1:4000", ReplAddr: "10.0.0.1:4001",
	}))
	f.Add(AppendReplPeerStatus(nil, PeerStatus{Priority: -1, Advertise: "h:1", ReplAddr: "h:2"}))
	f.Add(AppendReplPeerStatus(nil, PeerStatus{Term: 2, Advertise: "", ReplAddr: ""}))
	f.Add(AppendReplPeerStatus(nil, PeerStatus{Term: 9, Advertise: "a:1", ReplAddr: "b:2"})[:12])
	f.Add(AppendReplPeerStatus(nil, PeerStatus{
		Term: 4, AppliedSeq: 77, Advertise: "c:3", ReplAddr: "d:4",
		Trace: tracedCtx, TraceSeq: 77,
	}))
	// Role byte outside {0,1} must be rejected, not coerced.
	hdr := len(appendReplKind(nil, ReplStatus, rtrace.Context{}, 0))
	bad := AppendReplPeerStatus(nil, PeerStatus{Term: 1, Advertise: "e:5", ReplAddr: "f:6"})
	bad[hdr+8] = 2 // the role byte sits right after the 8-byte term
	f.Add(bad)
	// Address length prefix claiming more bytes than the frame holds.
	f.Add(append(AppendReplPeerStatus(nil, PeerStatus{Advertise: "g:7", ReplAddr: "h:8"})[:30], 0xff, 0xff))
	f.Fuzz(func(t *testing.T, data []byte) {
		ps, err := DecodeReplPeerStatus(data)
		if err != nil {
			if !replDecodeErrOK(err) {
				t.Fatalf("DecodeReplPeerStatus: unexpected error class %v", err)
			}
			return
		}
		if len(ps.Advertise) > MaxReplAddr || len(ps.ReplAddr) > MaxReplAddr {
			t.Fatalf("decoder accepted oversized address (%d/%d bytes)", len(ps.Advertise), len(ps.ReplAddr))
		}
		if len(ps.Advertise)+len(ps.ReplAddr) > len(data) {
			t.Fatalf("decoder conjured %d address bytes from %d input bytes",
				len(ps.Advertise)+len(ps.ReplAddr), len(data))
		}
		ps2, err := DecodeReplPeerStatus(AppendReplPeerStatus(nil, ps))
		if err != nil {
			t.Fatalf("re-decode of re-encoded peer status: %v", err)
		}
		if ps2 != ps {
			t.Fatalf("round trip changed the peer status: %+v -> %+v", ps, ps2)
		}
	})
}

func FuzzDecodeReplSnapshot(f *testing.F) {
	f.Add(AppendReplSnapshot(nil, SnapshotChunk{WALSeq: 5, Keys: []int64{-3, 1, 9}}))
	f.Add(AppendReplSnapshot(nil, SnapshotChunk{WALSeq: 5, Final: true}))
	f.Add([]byte{ReplSnapshot, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0xff, 0xff, 0xff, 0xff}) // huge key count
	f.Add(AppendReplSnapshot(nil, SnapshotChunk{WALSeq: 6, Keys: []int64{2}, Trace: tracedCtx, TraceSeq: 6}))
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := DecodeReplSnapshot(data)
		if err != nil {
			if !replDecodeErrOK(err) {
				t.Fatalf("DecodeReplSnapshot: unexpected error class %v", err)
			}
			return
		}
		if len(c.Keys) > len(data)/8 {
			t.Fatalf("decoded %d keys out of a %d-byte frame", len(c.Keys), len(data))
		}
		c2, err := DecodeReplSnapshot(AppendReplSnapshot(nil, c))
		if err != nil {
			t.Fatalf("re-decode of re-encoded chunk: %v", err)
		}
		if c2.WALSeq != c.WALSeq || c2.Final != c.Final || !reflect.DeepEqual(c2.Keys, c.Keys) ||
			c2.Trace != c.Trace || c2.TraceSeq != c.TraceSeq {
			t.Fatalf("round trip changed the chunk: %+v -> %+v", c, c2)
		}
	})
}
