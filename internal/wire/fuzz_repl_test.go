package wire

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/rtrace"
)

// tracedCtx is a sampled trace extension for seed frames.
var tracedCtx = rtrace.Context{TraceID: 0xdecafbad, SpanID: 21, Flags: rtrace.FlagSampled}

// Fuzz targets for the replication frame decoders, holding them to the
// same two properties as the data-plane targets: never panic or
// over-allocate on arbitrary bytes, and on accept be consistent with the
// encoder (decode∘encode∘decode is the identity).

// replDecodeErrOK reports whether a replication decoder's rejection is one
// of the declared error classes.
func replDecodeErrOK(err error) bool {
	return errors.Is(err, ErrTruncated) || errors.Is(err, ErrWrongKind) || errors.Is(err, ErrBadReplFrame)
}

func FuzzDecodeReplSubscribe(f *testing.F) {
	f.Add(AppendReplSubscribe(nil, Subscribe{FromSeq: 42, Term: 3}))
	f.Add(AppendReplSubscribe(nil, Subscribe{}))
	f.Add(AppendReplSubscribe(nil, Subscribe{FromSeq: 1})[:9])
	f.Add(AppendReplSubscribe(nil, Subscribe{FromSeq: 5, Term: 2, Trace: tracedCtx, TraceSeq: 5}))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeReplSubscribe(data)
		if err != nil {
			if !replDecodeErrOK(err) {
				t.Fatalf("DecodeReplSubscribe: unexpected error class %v", err)
			}
			return
		}
		s2, err := DecodeReplSubscribe(AppendReplSubscribe(nil, s))
		if err != nil {
			t.Fatalf("re-decode of re-encoded subscribe: %v", err)
		}
		if s2 != s {
			t.Fatalf("round trip changed the subscribe: %+v -> %+v", s, s2)
		}
	})
}

func FuzzDecodeReplFrames(f *testing.F) {
	f.Add(AppendReplFrames(nil, FrameBatch{Term: 1, CommitSeq: 9, Addr: "127.0.0.1:9000"}))
	f.Add(AppendReplFrames(nil, FrameBatch{Term: 2, CommitSeq: 10, Addr: "h:1", N: 1, Frames: make([]byte, 25)}))
	f.Add(AppendReplFrames(nil, FrameBatch{Addr: ""})[:18])
	f.Add(AppendReplFrames(nil, FrameBatch{
		Term: 3, CommitSeq: 11, Addr: "h:2", N: 1, Frames: make([]byte, 25),
		Trace: tracedCtx, TraceSeq: 11,
	}))
	f.Add(AppendReplFrames(nil, FrameBatch{Term: 3, Addr: "h:2", Trace: tracedCtx})[:12])
	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := DecodeReplFrames(data)
		if err != nil {
			if !replDecodeErrOK(err) {
				t.Fatalf("DecodeReplFrames: unexpected error class %v", err)
			}
			return
		}
		if len(b.Frames) > len(data) {
			t.Fatalf("decoder conjured %d frame bytes from %d input bytes", len(b.Frames), len(data))
		}
		b2, err := DecodeReplFrames(AppendReplFrames(nil, b))
		if err != nil {
			t.Fatalf("re-decode of re-encoded frame batch: %v", err)
		}
		if b2.Term != b.Term || b2.CommitSeq != b.CommitSeq || b2.Addr != b.Addr ||
			b2.N != b.N || !reflect.DeepEqual(b2.Frames, b.Frames) ||
			b2.Trace != b.Trace || b2.TraceSeq != b.TraceSeq {
			t.Fatalf("round trip changed the frame batch: %+v -> %+v", b, b2)
		}
	})
}

func FuzzDecodeReplAck(f *testing.F) {
	f.Add(AppendReplAck(nil, Ack{AppliedSeq: 100, DurableSeq: 90}))
	f.Add(AppendReplAck(nil, Ack{}))
	f.Add(AppendReplAck(nil, Ack{AppliedSeq: 7})[:10])
	f.Add(AppendReplAck(nil, Ack{AppliedSeq: 12, DurableSeq: 12, Trace: tracedCtx, TraceSeq: 12}))
	f.Fuzz(func(t *testing.T, data []byte) {
		a, err := DecodeReplAck(data)
		if err != nil {
			if !replDecodeErrOK(err) {
				t.Fatalf("DecodeReplAck: unexpected error class %v", err)
			}
			return
		}
		a2, err := DecodeReplAck(AppendReplAck(nil, a))
		if err != nil {
			t.Fatalf("re-decode of re-encoded ack: %v", err)
		}
		if a2 != a {
			t.Fatalf("round trip changed the ack: %+v -> %+v", a, a2)
		}
	})
}

func FuzzDecodeReplSnapshot(f *testing.F) {
	f.Add(AppendReplSnapshot(nil, SnapshotChunk{WALSeq: 5, Keys: []int64{-3, 1, 9}}))
	f.Add(AppendReplSnapshot(nil, SnapshotChunk{WALSeq: 5, Final: true}))
	f.Add([]byte{ReplSnapshot, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0xff, 0xff, 0xff, 0xff}) // huge key count
	f.Add(AppendReplSnapshot(nil, SnapshotChunk{WALSeq: 6, Keys: []int64{2}, Trace: tracedCtx, TraceSeq: 6}))
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := DecodeReplSnapshot(data)
		if err != nil {
			if !replDecodeErrOK(err) {
				t.Fatalf("DecodeReplSnapshot: unexpected error class %v", err)
			}
			return
		}
		if len(c.Keys) > len(data)/8 {
			t.Fatalf("decoded %d keys out of a %d-byte frame", len(c.Keys), len(data))
		}
		c2, err := DecodeReplSnapshot(AppendReplSnapshot(nil, c))
		if err != nil {
			t.Fatalf("re-decode of re-encoded chunk: %v", err)
		}
		if c2.WALSeq != c.WALSeq || c2.Final != c.Final || !reflect.DeepEqual(c2.Keys, c.Keys) ||
			c2.Trace != c.Trace || c2.TraceSeq != c.TraceSeq {
			t.Fatalf("round trip changed the chunk: %+v -> %+v", c, c2)
		}
	})
}
