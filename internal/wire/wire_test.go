package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func TestRequestRoundTrip(t *testing.T) {
	cases := []Request{
		{ID: 1, Op: OpInsert, DeadlineMS: 250, Key: 42},
		{ID: 2, Op: OpDelete, Key: -7},
		{ID: 3, Op: OpLookup, DeadlineMS: 1, Key: 1 << 50},
		{ID: 4, Op: OpRange, Key: -100, To: 100, Limit: 32},
	}
	for _, q := range cases {
		payload := AppendRequest(nil, q)
		got, err := DecodeRequest(payload)
		if err != nil {
			t.Fatalf("DecodeRequest(%+v): %v", q, err)
		}
		if got != q {
			t.Fatalf("round trip: got %+v, want %+v", got, q)
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	cases := []Response{
		{ID: 9, Status: StatusOK, OK: true},
		{ID: 10, Status: StatusOverloaded},
		{ID: 11, Status: StatusCapacity},
		{ID: 12, Status: StatusOK, OK: true, Keys: []int64{-5, 0, 7, 1 << 40}},
		{ID: 13, Status: StatusOK, Keys: []int64{}},
	}
	for _, p := range cases {
		payload := AppendResponse(nil, p)
		got, err := DecodeResponse(payload)
		if err != nil {
			t.Fatalf("DecodeResponse(%+v): %v", p, err)
		}
		if got.ID != p.ID || got.Status != p.Status || got.OK != p.OK || len(got.Keys) != len(p.Keys) {
			t.Fatalf("round trip: got %+v, want %+v", got, p)
		}
		for i := range p.Keys {
			if got.Keys[i] != p.Keys[i] {
				t.Fatalf("key %d: got %d, want %d", i, got.Keys[i], p.Keys[i])
			}
		}
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	q := Request{ID: 77, Op: OpRange, Key: 1, To: 9, Limit: 4}
	if err := WriteFrame(&buf, AppendRequest(nil, q)); err != nil {
		t.Fatal(err)
	}
	payload, _, err := ReadFrame(&buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeRequest(payload)
	if err != nil || got != q {
		t.Fatalf("frame round trip: got %+v, %v; want %+v", got, err, q)
	}
}

func TestScratchReuse(t *testing.T) {
	var buf bytes.Buffer
	for i := 0; i < 3; i++ {
		if err := WriteFrame(&buf, AppendRequest(nil, Request{ID: uint64(i), Op: OpLookup, Key: int64(i)})); err != nil {
			t.Fatal(err)
		}
	}
	var scratch []byte
	for i := 0; i < 3; i++ {
		payload, s, err := ReadFrame(&buf, scratch)
		if err != nil {
			t.Fatal(err)
		}
		scratch = s
		q, err := DecodeRequest(payload)
		if err != nil || q.ID != uint64(i) {
			t.Fatalf("frame %d: got %+v, %v", i, q, err)
		}
	}
}

func TestOversizedFrameRejected(t *testing.T) {
	if err := WriteFrame(io.Discard, make([]byte, MaxFrame+1)); !errors.Is(err, ErrFrameTooBig) {
		t.Fatalf("WriteFrame oversize err = %v, want ErrFrameTooBig", err)
	}
	// A hostile length prefix must be rejected before any allocation.
	var buf bytes.Buffer
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff})
	if _, _, err := ReadFrame(&buf, nil); !errors.Is(err, ErrFrameTooBig) {
		t.Fatalf("ReadFrame hostile length err = %v, want ErrFrameTooBig", err)
	}
}

func TestTruncatedFrames(t *testing.T) {
	if _, err := DecodeRequest(make([]byte, 5)); !errors.Is(err, ErrTruncated) {
		t.Fatalf("short request err = %v, want ErrTruncated", err)
	}
	if _, err := DecodeRequest(AppendRequest(nil, Request{Op: OpRange})[:25]); !errors.Is(err, ErrTruncated) {
		t.Fatalf("short range request err = %v, want ErrTruncated", err)
	}
	if _, err := DecodeResponse(make([]byte, 3)); !errors.Is(err, ErrTruncated) {
		t.Fatalf("short response err = %v, want ErrTruncated", err)
	}
	// Range response whose declared count exceeds the payload.
	p := AppendResponse(nil, Response{Status: StatusOK, Keys: []int64{1, 2, 3}})
	if _, err := DecodeResponse(p[:len(p)-8]); !errors.Is(err, ErrTruncated) {
		t.Fatalf("truncated keys err = %v, want ErrTruncated", err)
	}
}

func TestStatusClassification(t *testing.T) {
	retryable := map[Status]bool{
		StatusOK: false, StatusOverloaded: true, StatusCapacity: true,
		StatusKeyOutOfRange: false, StatusDeadlineExceeded: false,
		StatusDraining: true, StatusBadRequest: false, StatusInternal: false,
	}
	for s, want := range retryable {
		if s.Retryable() != want {
			t.Errorf("%v.Retryable() = %v, want %v", s, s.Retryable(), want)
		}
	}
}
