package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"repro/internal/rtrace"
)

func TestRequestRoundTrip(t *testing.T) {
	cases := []Request{
		{ID: 1, Op: OpInsert, DeadlineMS: 250, Key: 42},
		{ID: 2, Op: OpDelete, Key: -7},
		{ID: 3, Op: OpLookup, DeadlineMS: 1, Key: 1 << 50},
		{ID: 4, Op: OpRange, Key: -100, To: 100, Limit: 32},
	}
	for _, q := range cases {
		payload := AppendRequest(nil, q)
		got, err := DecodeRequest(payload)
		if err != nil {
			t.Fatalf("DecodeRequest(%+v): %v", q, err)
		}
		if got != q {
			t.Fatalf("round trip: got %+v, want %+v", got, q)
		}
	}
}

// TestTraceExtensionRoundTrip pins the optional trace extension: traced
// requests round-trip with every op-specific tail shifted past the
// context, untraced frames never carry the flag, and a traced frame
// truncated inside the extension is rejected as ErrTruncated.
func TestTraceExtensionRoundTrip(t *testing.T) {
	tc := rtrace.Context{TraceID: 0x1122334455667788, SpanID: 0x99aabbcc, Flags: rtrace.FlagSampled}
	cases := []Request{
		{ID: 1, Op: OpInsert, DeadlineMS: 9, Key: 42, Trace: tc},
		{ID: 2, Op: OpRange, Key: -100, To: 100, Limit: 32, Trace: tc},
		{ID: 3, Op: OpLookupAt, Key: 5, MinSeq: 77, Trace: tc},
	}
	for _, q := range cases {
		payload := AppendRequest(nil, q)
		if payload[8]&TraceFlag == 0 {
			t.Fatalf("traced %s request did not set TraceFlag", OpName(q.Op))
		}
		got, err := DecodeRequest(payload)
		if err != nil {
			t.Fatalf("DecodeRequest(%+v): %v", q, err)
		}
		if got != q {
			t.Fatalf("round trip: got %+v, want %+v", got, q)
		}
		if _, err := DecodeRequest(payload[:reqBaseLen+8]); !errors.Is(err, ErrTruncated) {
			t.Fatalf("truncated trace ext err = %v, want ErrTruncated", err)
		}
	}
	if p := AppendRequest(nil, Request{ID: 4, Op: OpInsert, Key: 1}); p[8]&TraceFlag != 0 {
		t.Fatal("untraced request set TraceFlag")
	}

	// Batch requests: the per-op tail shifts past the context.
	ops := []BatchOp{{Op: OpInsert, Key: 1}, {Op: OpLookup, Key: 2}}
	payload := AppendBatchRequest(nil, 7, 50, tc, ops)
	q, err := DecodeRequest(payload)
	if err != nil || q.Op != OpBatch || q.Trace != tc {
		t.Fatalf("traced batch header: %+v, %v", q, err)
	}
	got, err := DecodeBatchOps(payload, nil)
	if err != nil || len(got) != len(ops) || got[0] != ops[0] || got[1] != ops[1] {
		t.Fatalf("traced batch ops: %+v, %v", got, err)
	}

	// Replication kinds: context plus covered WAL seq after the kind byte.
	fb := FrameBatch{Term: 3, CommitSeq: 20, Addr: "h:1", N: 1,
		Frames: make([]byte, 25), Trace: tc, TraceSeq: 19}
	fb2, err := DecodeReplFrames(AppendReplFrames(nil, fb))
	if err != nil || fb2.Trace != tc || fb2.TraceSeq != 19 || fb2.Term != 3 || fb2.Addr != "h:1" {
		t.Fatalf("traced ReplFrames round trip: %+v, %v", fb2, err)
	}
	if k, err := ReplKind(AppendReplFrames(nil, fb)); err != nil || k != ReplFrames {
		t.Fatalf("ReplKind of traced frame = %d, %v; want ReplFrames", k, err)
	}
	a := Ack{AppliedSeq: 20, DurableSeq: 20, Trace: tc, TraceSeq: 19}
	if a2, err := DecodeReplAck(AppendReplAck(nil, a)); err != nil || a2 != a {
		t.Fatalf("traced ReplAck round trip: %+v, %v", a2, err)
	}
}

func TestResponseRoundTrip(t *testing.T) {
	cases := []Response{
		{ID: 9, Status: StatusOK, OK: true},
		{ID: 10, Status: StatusOverloaded},
		{ID: 11, Status: StatusCapacity},
		{ID: 12, Status: StatusOK, OK: true, Keys: []int64{-5, 0, 7, 1 << 40}},
		{ID: 13, Status: StatusOK, Keys: []int64{}},
	}
	for _, p := range cases {
		payload := AppendResponse(nil, p)
		got, err := DecodeResponse(payload)
		if err != nil {
			t.Fatalf("DecodeResponse(%+v): %v", p, err)
		}
		if got.ID != p.ID || got.Status != p.Status || got.OK != p.OK || len(got.Keys) != len(p.Keys) {
			t.Fatalf("round trip: got %+v, want %+v", got, p)
		}
		for i := range p.Keys {
			if got.Keys[i] != p.Keys[i] {
				t.Fatalf("key %d: got %d, want %d", i, got.Keys[i], p.Keys[i])
			}
		}
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	q := Request{ID: 77, Op: OpRange, Key: 1, To: 9, Limit: 4}
	if err := WriteFrame(&buf, AppendRequest(nil, q)); err != nil {
		t.Fatal(err)
	}
	payload, _, err := ReadFrame(&buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeRequest(payload)
	if err != nil || got != q {
		t.Fatalf("frame round trip: got %+v, %v; want %+v", got, err, q)
	}
}

func TestScratchReuse(t *testing.T) {
	var buf bytes.Buffer
	for i := 0; i < 3; i++ {
		if err := WriteFrame(&buf, AppendRequest(nil, Request{ID: uint64(i), Op: OpLookup, Key: int64(i)})); err != nil {
			t.Fatal(err)
		}
	}
	var scratch []byte
	for i := 0; i < 3; i++ {
		payload, s, err := ReadFrame(&buf, scratch)
		if err != nil {
			t.Fatal(err)
		}
		scratch = s
		q, err := DecodeRequest(payload)
		if err != nil || q.ID != uint64(i) {
			t.Fatalf("frame %d: got %+v, %v", i, q, err)
		}
	}
}

func TestOversizedFrameRejected(t *testing.T) {
	if err := WriteFrame(io.Discard, make([]byte, MaxFrame+1)); !errors.Is(err, ErrFrameTooBig) {
		t.Fatalf("WriteFrame oversize err = %v, want ErrFrameTooBig", err)
	}
	// A hostile length prefix must be rejected before any allocation.
	var buf bytes.Buffer
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff})
	if _, _, err := ReadFrame(&buf, nil); !errors.Is(err, ErrFrameTooBig) {
		t.Fatalf("ReadFrame hostile length err = %v, want ErrFrameTooBig", err)
	}
}

func TestTruncatedFrames(t *testing.T) {
	if _, err := DecodeRequest(make([]byte, 5)); !errors.Is(err, ErrTruncated) {
		t.Fatalf("short request err = %v, want ErrTruncated", err)
	}
	if _, err := DecodeRequest(AppendRequest(nil, Request{Op: OpRange})[:25]); !errors.Is(err, ErrTruncated) {
		t.Fatalf("short range request err = %v, want ErrTruncated", err)
	}
	if _, err := DecodeResponse(make([]byte, 3)); !errors.Is(err, ErrTruncated) {
		t.Fatalf("short response err = %v, want ErrTruncated", err)
	}
	// Range response whose declared count exceeds the payload.
	p := AppendResponse(nil, Response{Status: StatusOK, Keys: []int64{1, 2, 3}})
	if _, err := DecodeResponse(p[:len(p)-8]); !errors.Is(err, ErrTruncated) {
		t.Fatalf("truncated keys err = %v, want ErrTruncated", err)
	}
}

func TestStatusClassification(t *testing.T) {
	retryable := map[Status]bool{
		StatusOK: false, StatusOverloaded: true, StatusCapacity: true,
		StatusKeyOutOfRange: false, StatusDeadlineExceeded: false,
		StatusDraining: true, StatusBadRequest: false, StatusInternal: false,
	}
	for s, want := range retryable {
		if s.Retryable() != want {
			t.Errorf("%v.Retryable() = %v, want %v", s, s.Retryable(), want)
		}
	}
}

func TestBatchRequestRoundTrip(t *testing.T) {
	ops := []BatchOp{
		{Op: OpInsert, Key: 42},
		{Op: OpDelete, Key: -7},
		{Op: OpLookup, Key: 1 << 50},
	}
	payload := AppendBatchRequest(nil, 99, 250, rtrace.Context{}, ops)
	q, err := DecodeRequest(payload)
	if err != nil {
		t.Fatal(err)
	}
	if q.ID != 99 || q.Op != OpBatch || q.DeadlineMS != 250 || q.Key != 0 {
		t.Fatalf("batch base header = %+v", q)
	}
	got, err := DecodeBatchOps(payload, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ops) {
		t.Fatalf("decoded %d ops, want %d", len(got), len(ops))
	}
	for i := range ops {
		if got[i] != ops[i] {
			t.Fatalf("op %d: got %+v, want %+v", i, got[i], ops[i])
		}
	}
	// Empty batches are legal on the wire.
	got, err = DecodeBatchOps(AppendBatchRequest(nil, 1, 0, rtrace.Context{}, nil), nil)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty batch: %v, %d ops", err, len(got))
	}
}

func TestBatchResponseRoundTrip(t *testing.T) {
	results := []BatchResult{
		{Status: StatusOK, OK: true},
		{Status: StatusOK, OK: false},
		{Status: StatusCapacity},
		{Status: StatusKeyOutOfRange},
	}
	payload := AppendBatchResponse(nil, 7, results)
	id, st, got, err := DecodeBatchResponse(payload, nil)
	if err != nil || id != 7 || st != StatusOK {
		t.Fatalf("decode: id=%d st=%v err=%v", id, st, err)
	}
	if len(got) != len(results) {
		t.Fatalf("decoded %d results, want %d", len(got), len(results))
	}
	for i := range results {
		if got[i] != results[i] {
			t.Fatalf("result %d: got %+v, want %+v", i, got[i], results[i])
		}
	}
	// A frame-level rejection has no per-op tail.
	payload = AppendResponse(nil, Response{ID: 8, Status: StatusOverloaded})
	id, st, got, err = DecodeBatchResponse(payload, nil)
	if err != nil || id != 8 || st != StatusOverloaded || len(got) != 0 {
		t.Fatalf("rejected batch: id=%d st=%v n=%d err=%v", id, st, len(got), err)
	}
}

func TestBatchMalformed(t *testing.T) {
	payload := AppendBatchRequest(nil, 1, 0, rtrace.Context{}, []BatchOp{{Op: OpInsert, Key: 5}})
	if _, err := DecodeBatchOps(payload[:len(payload)-4], nil); !errors.Is(err, ErrTruncated) {
		t.Fatalf("truncated batch ops err = %v, want ErrTruncated", err)
	}
	// A subop outside the point-op set must be rejected.
	bad := append([]byte(nil), payload...)
	bad[reqBaseLen+2] = OpRange
	if _, err := DecodeBatchOps(bad, nil); !errors.Is(err, ErrBadBatchOp) {
		t.Fatalf("bad subop err = %v, want ErrBadBatchOp", err)
	}
	// A count beyond MaxBatchOps must be rejected before the tail is read.
	big := AppendRequest(nil, Request{ID: 1, Op: OpBatch})
	big = append(big, byte((MaxBatchOps+1)>>8), byte((MaxBatchOps+1)&0xff))
	if _, err := DecodeBatchOps(big, nil); !errors.Is(err, ErrBatchTooBig) {
		t.Fatalf("oversized batch err = %v, want ErrBatchTooBig", err)
	}
	resp := AppendBatchResponse(nil, 1, []BatchResult{{Status: StatusOK, OK: true}})
	if _, _, _, err := DecodeBatchResponse(resp[:len(resp)-1], nil); !errors.Is(err, ErrTruncated) {
		t.Fatalf("truncated batch response err = %v, want ErrTruncated", err)
	}
	if err := func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				err, _ = r.(error)
			}
		}()
		AppendBatchRequest(nil, 1, 0, rtrace.Context{}, make([]BatchOp, MaxBatchOps+1))
		return nil
	}(); !errors.Is(err, ErrBatchTooBig) {
		t.Fatalf("oversized encode panic = %v, want ErrBatchTooBig", err)
	}
}

// TestBatchSteadyStateZeroAlloc asserts the pooled-buffer encode/decode
// cycle — the per-frame work of the server loop and the pipelined
// client — does not allocate once the pool and scratch slices are warm.
func TestBatchSteadyStateZeroAlloc(t *testing.T) {
	ops := make([]BatchOp, 64)
	for i := range ops {
		ops[i] = BatchOp{Op: OpLookup, Key: int64(i)}
	}
	results := make([]BatchResult, 64)
	opScratch := make([]BatchOp, 0, 64)
	resScratch := make([]BatchResult, 0, 64)

	allocs := testing.AllocsPerRun(200, func() {
		// Client side: encode a batch request into a pooled buffer.
		req := GetBuf()
		*req = AppendBatchRequest(*req, 3, 0, rtrace.Context{}, ops)
		// Server side: decode it into per-connection scratch, encode the
		// response into another pooled buffer.
		var err error
		opScratch, err = DecodeBatchOps(*req, opScratch[:0])
		if err != nil {
			t.Fatal(err)
		}
		PutBuf(req)
		resp := GetBuf()
		*resp = AppendBatchResponse(*resp, 3, results)
		// Client side again: decode the response into scratch.
		_, _, resScratch, err = DecodeBatchResponse(*resp, resScratch[:0])
		if err != nil {
			t.Fatal(err)
		}
		PutBuf(resp)
	})
	if allocs != 0 {
		t.Fatalf("steady-state batch encode/decode allocates %.1f per op, want 0", allocs)
	}
}
