package wire

import (
	"errors"
	"testing"

	"repro/internal/rtrace"
)

func TestAggregateRequestRoundTrip(t *testing.T) {
	traced := rtrace.Context{TraceID: 0xdecafbad, SpanID: 5, Flags: rtrace.FlagSampled}
	for _, q := range []AggregateRequest{
		{ID: 1, DeadlineMS: 50, Kind: AggRank, Mode: AggModeExact, Key: 42},
		{ID: 2, Kind: AggSelect, Mode: AggModeStale, MaxDirty: 128, Key: 7},
		{ID: 3, Kind: AggCount, Mode: AggModeExact, Key: -100, To: 100},
		{ID: 4, Kind: AggSum, Mode: AggModeStale, MaxDirty: 1 << 40, Key: 0, To: 1 << 50},
		{ID: 5, Kind: AggCount, Mode: AggModeExact, Key: -1, To: 1, Trace: traced},
	} {
		frame := AppendAggregateRequest(nil, q)
		got, err := DecodeAggregate(frame)
		if err != nil {
			t.Fatalf("DecodeAggregate(%+v): %v", q, err)
		}
		if got != q {
			t.Fatalf("round trip changed the request: %+v -> %+v", q, got)
		}
		// The generic decoder must still read the base header (the server's
		// conn loop decodes it first to learn the op).
		base, err := DecodeRequest(frame)
		if err != nil || base.Op != OpAggregate || base.ID != q.ID || base.Trace != q.Trace {
			t.Fatalf("DecodeRequest on aggregate frame: %+v, %v", base, err)
		}
	}
}

func TestDecodeAggregateRejects(t *testing.T) {
	good := AppendAggregateRequest(nil, AggregateRequest{ID: 9, Kind: AggRank, Mode: AggModeExact, Key: 1})
	for i := 0; i < len(good); i++ {
		if _, err := DecodeAggregate(good[:i]); !errors.Is(err, ErrTruncated) {
			t.Fatalf("truncation at %d: err = %v, want ErrTruncated", i, err)
		}
	}
	if _, err := DecodeAggregate(append(append([]byte{}, good...), 0)); !errors.Is(err, ErrTruncated) {
		t.Fatalf("trailing byte: err = %v, want ErrTruncated", err)
	}

	badKind := append([]byte{}, good...)
	badKind[reqBaseLen] = 99
	if _, err := DecodeAggregate(badKind); !errors.Is(err, ErrBadAggregate) {
		t.Fatalf("kind 99: err = %v, want ErrBadAggregate", err)
	}
	badMode := append([]byte{}, good...)
	badMode[reqBaseLen+1] = 7
	if _, err := DecodeAggregate(badMode); !errors.Is(err, ErrBadAggregate) {
		t.Fatalf("mode 7: err = %v, want ErrBadAggregate", err)
	}
	notAgg := AppendRequest(nil, Request{ID: 1, Op: OpInsert, Key: 3})
	if _, err := DecodeAggregate(notAgg); !errors.Is(err, ErrBadAggregate) && !errors.Is(err, ErrTruncated) {
		t.Fatalf("non-aggregate op: err = %v", err)
	}
}

func TestAggregateResponseRoundTrip(t *testing.T) {
	for _, p := range []AggregateResponse{
		{ID: 1, Status: StatusOK, Value: 12345},
		{ID: 2, Status: StatusOK, Value: -1},
		{ID: 3, Status: StatusNoIndex},
		{ID: 4, Status: StatusDeadlineExceeded},
		{ID: 5, Status: StatusOverloaded},
	} {
		frame := AppendAggregateResponse(nil, p)
		got, err := DecodeAggregateResponse(frame)
		if err != nil {
			t.Fatalf("DecodeAggregateResponse(%+v): %v", p, err)
		}
		if got != p {
			t.Fatalf("round trip changed the response: %+v -> %+v", p, got)
		}
	}
	// Error statuses carry no value tail; a value on them is a framing bug.
	frame := AppendAggregateResponse(nil, AggregateResponse{ID: 6, Status: StatusNoIndex})
	if _, err := DecodeAggregateResponse(append(frame, 1, 2, 3)); !errors.Is(err, ErrTruncated) {
		t.Fatalf("junk after error status: err = %v, want ErrTruncated", err)
	}
	ok := AppendAggregateResponse(nil, AggregateResponse{ID: 7, Status: StatusOK, Value: 9})
	for i := 0; i < len(ok); i++ {
		if _, err := DecodeAggregateResponse(ok[:i]); !errors.Is(err, ErrTruncated) {
			t.Fatalf("truncation at %d: err = %v, want ErrTruncated", i, err)
		}
	}
}

func FuzzDecodeAggregate(f *testing.F) {
	traced := rtrace.Context{TraceID: 0xfeed, SpanID: 2, Flags: rtrace.FlagSampled}
	f.Add(AppendAggregateRequest(nil, AggregateRequest{ID: 1, Kind: AggRank, Mode: AggModeExact, Key: 42}))
	f.Add(AppendAggregateRequest(nil, AggregateRequest{ID: 2, Kind: AggCount, Mode: AggModeStale, MaxDirty: 64, Key: -5, To: 5}))
	f.Add(AppendAggregateRequest(nil, AggregateRequest{ID: 3, Kind: AggSum, Mode: AggModeExact, Key: 0, To: 1 << 30, Trace: traced}))
	f.Add(AppendAggregateRequest(nil, AggregateRequest{ID: 4, Kind: AggSelect, Mode: AggModeStale, Key: 10})[:reqBaseLen+3])
	f.Fuzz(func(t *testing.T, data []byte) {
		q, err := DecodeAggregate(data)
		if err != nil {
			if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrBadAggregate) {
				t.Fatalf("DecodeAggregate: unexpected error class %v", err)
			}
			return
		}
		q2, err := DecodeAggregate(AppendAggregateRequest(nil, q))
		if err != nil {
			t.Fatalf("re-decode of re-encoded aggregate: %v", err)
		}
		if q2 != q {
			t.Fatalf("round trip changed the request: %+v -> %+v", q, q2)
		}
	})
}

func FuzzDecodeAggregateResponse(f *testing.F) {
	f.Add(AppendAggregateResponse(nil, AggregateResponse{ID: 1, Status: StatusOK, Value: 77}))
	f.Add(AppendAggregateResponse(nil, AggregateResponse{ID: 2, Status: StatusNoIndex}))
	f.Add(AppendAggregateResponse(nil, AggregateResponse{ID: 3, Status: StatusOK, Value: -9})[:respBaseLen+3])
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := DecodeAggregateResponse(data)
		if err != nil {
			if !errors.Is(err, ErrTruncated) {
				t.Fatalf("DecodeAggregateResponse: unexpected error class %v", err)
			}
			return
		}
		p2, err := DecodeAggregateResponse(AppendAggregateResponse(nil, p))
		if err != nil {
			t.Fatalf("re-decode of re-encoded response: %v", err)
		}
		if p2 != p {
			t.Fatalf("round trip changed the response: %+v -> %+v", p, p2)
		}
	})
}
