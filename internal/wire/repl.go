// Replication frame kinds (internal/repl's leader↔follower stream).
//
// Replication runs on a dedicated connection, separate from the data
// plane, but shares the same uint32-length framing (ReadFrame/WriteFrame)
// and the same op/kind byte namespace so a frame can never be mistaken
// for a data-plane request. The stream is asymmetric:
//
//	follower → leader   ReplSubscribe   once, right after dialing
//	leader  → follower  ReplSnapshot*   catch-up chunks (only when the
//	                                    follower is behind the leader's
//	                                    oldest retained WAL record)
//	leader  → follower  ReplFrames*     committed WAL frames; an empty
//	                                    batch (n = 0) is a heartbeat
//	follower → leader   ReplAck*        cumulative applied/durable seqs
//
// A ReplFrames payload carries the leader's term and advertised data
// address on every frame, heartbeats included, so followers always know
// who to redirect clients to and can adopt a newer term the moment it
// appears.
//
// Payload formats, all integers big-endian, each starting with its kind
// byte:
//
//	ReplSubscribe:
//	  uint64 fromSeq   every record with seq ≤ fromSeq is already applied
//	  uint64 term      highest term the follower has observed
//
//	ReplFrames:
//	  uint64 term
//	  uint64 commitSeq       leader's durable sequence number
//	  uint16 addrLen, addr   leader's advertised data address
//	  uint32 n               WAL frames that follow (0 = heartbeat)
//	  bytes  frames          n verbatim on-disk WAL frames
//
//	ReplAck:
//	  uint64 appliedSeq      newest record applied to the follower's tree
//	  uint64 durableSeq      newest record fsynced by the follower's WAL
//	  uint64 term            highest term the acker has observed (absent on
//	                         legacy 16-byte acks, decoded as 0 = unknown);
//	                         a semi-sync leader refuses to count acks from
//	                         a newer term — they prove it was deposed
//
//	ReplStatus (either direction, on a dedicated probe connection):
//	  uint64 term
//	  uint8  role            0 follower, 1 leader
//	  uint32 priority        election priority, int32 two's complement
//	  uint64 appliedSeq
//	  uint16 advLen, adv     data-plane address (election rank tiebreak)
//	  uint16 replLen, repl   replication listener address
//
//	ReplSnapshot:
//	  uint64 walSeq    horizon the snapshot covers
//	  uint8  final     1 on the last chunk
//	  uint32 n         keys in this chunk
//	  n × int64 keys   strictly ascending within and across chunks
//
// Every replication kind accepts the optional trace extension: when bit 7
// of the kind byte (TraceFlag) is set, a 24-byte block — the 16-byte
// rtrace context plus the uint64 WAL sequence it covers — sits directly
// after the kind byte, before the kind's own fields. The leader attaches
// it to a ReplFrames batch that covers a sampled request's record, so the
// follower can parent its apply span under the leader's request span; a
// follower may echo it on the covering ReplAck.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/rtrace"
)

// Replication frame kinds, continuing the operation byte namespace.
const (
	ReplSubscribe uint8 = 6
	ReplFrames    uint8 = 7
	ReplAck       uint8 = 8
	ReplSnapshot  uint8 = 9
	// 10 is OpLookupAt on the data plane (see wire.go).
	ReplStatus uint8 = 11
)

// MaxReplAddr bounds the advertised-address string inside a ReplFrames
// payload; anything longer is a protocol error, not a real address.
const MaxReplAddr = 256

// MaxSnapshotChunk bounds the keys one ReplSnapshot chunk may carry, sized
// so a full chunk stays inside MaxFrame.
const MaxSnapshotChunk = (MaxFrame - 64) / 8

// Replication frame-shape errors.
var (
	ErrBadReplFrame = errors.New("wire: malformed replication frame")
	ErrWrongKind    = errors.New("wire: unexpected frame kind")
)

// ReplKindName returns a human-readable name for a replication frame kind.
func ReplKindName(kind uint8) string {
	switch kind {
	case ReplSubscribe:
		return "repl-subscribe"
	case ReplFrames:
		return "repl-frames"
	case ReplAck:
		return "repl-ack"
	case ReplSnapshot:
		return "repl-snapshot"
	case ReplStatus:
		return "repl-status"
	default:
		return fmt.Sprintf("repl-kind(%d)", kind)
	}
}

// ReplKind returns the kind byte of a replication payload (TraceFlag
// masked out) without decoding the rest, so a receive loop can dispatch.
func ReplKind(frame []byte) (uint8, error) {
	if len(frame) < 1 {
		return 0, ErrTruncated
	}
	return frame[0] &^ TraceFlag, nil
}

// replTraceExtLen is the encoded trace extension on replication frames:
// the 16-byte context plus the uint64 WAL sequence it covers.
const replTraceExtLen = rtrace.ContextLen + 8

// appendReplKind writes the kind byte and, when the extension is carried
// (non-zero context or sequence), the TraceFlag bit and extension block.
func appendReplKind(dst []byte, kind uint8, tc rtrace.Context, seq uint64) []byte {
	if tc == (rtrace.Context{}) && seq == 0 {
		return append(dst, kind)
	}
	dst = append(dst, kind|TraceFlag)
	dst = rtrace.AppendContext(dst, tc)
	return binary.BigEndian.AppendUint64(dst, seq)
}

// replBody validates the kind byte against want and strips the optional
// trace extension, returning the kind's own fields.
func replBody(frame []byte, want uint8) (rest []byte, tc rtrace.Context, seq uint64, err error) {
	if len(frame) < 1 {
		return nil, tc, 0, ErrTruncated
	}
	if frame[0]&^TraceFlag != want {
		return nil, tc, 0, ErrWrongKind
	}
	rest = frame[1:]
	if frame[0]&TraceFlag != 0 {
		if len(rest) < replTraceExtLen {
			return nil, tc, 0, ErrTruncated
		}
		tc, _ = rtrace.DecodeContext(rest)
		seq = binary.BigEndian.Uint64(rest[rtrace.ContextLen:])
		rest = rest[replTraceExtLen:]
	}
	return rest, tc, seq, nil
}

// Subscribe is a decoded ReplSubscribe payload.
type Subscribe struct {
	FromSeq uint64 // follower has applied every record with seq ≤ FromSeq
	Term    uint64 // highest term the follower has observed
	// Trace/TraceSeq mirror the optional trace extension (zero = absent);
	// a subscribe normally carries none.
	Trace    rtrace.Context
	TraceSeq uint64
}

// AppendReplSubscribe appends a ReplSubscribe payload to dst.
func AppendReplSubscribe(dst []byte, s Subscribe) []byte {
	dst = appendReplKind(dst, ReplSubscribe, s.Trace, s.TraceSeq)
	dst = binary.BigEndian.AppendUint64(dst, s.FromSeq)
	dst = binary.BigEndian.AppendUint64(dst, s.Term)
	return dst
}

// DecodeReplSubscribe decodes a ReplSubscribe payload.
func DecodeReplSubscribe(frame []byte) (Subscribe, error) {
	var s Subscribe
	rest, tc, seq, err := replBody(frame, ReplSubscribe)
	if err != nil {
		return s, err
	}
	if len(rest) != 8+8 {
		return s, ErrTruncated
	}
	s.Trace, s.TraceSeq = tc, seq
	s.FromSeq = binary.BigEndian.Uint64(rest[0:8])
	s.Term = binary.BigEndian.Uint64(rest[8:16])
	return s, nil
}

// FrameBatch is a decoded ReplFrames payload. Frames aliases the input
// buffer and is valid only until the buffer's next reuse; N is the number
// of WAL frames the sender claims Frames holds (the receiver walks them
// with wal.DecodeFrame, which validates each frame's own CRC).
type FrameBatch struct {
	Term      uint64
	CommitSeq uint64 // leader's durable sequence number
	Addr      string // leader's advertised data address
	N         uint32 // WAL frames in Frames; 0 = heartbeat
	Frames    []byte // verbatim on-disk WAL frames
	// Trace/TraceSeq carry the optional trace extension: the context of a
	// sampled request whose WAL record (TraceSeq) this batch covers, so
	// the follower's apply span links into the leader's span tree.
	Trace    rtrace.Context
	TraceSeq uint64
}

// AppendReplFrames appends a ReplFrames payload to dst. It panics when the
// address exceeds MaxReplAddr — addresses are operator configuration, not
// attacker input, on the encoding side.
func AppendReplFrames(dst []byte, b FrameBatch) []byte {
	if len(b.Addr) > MaxReplAddr {
		panic(ErrBadReplFrame)
	}
	dst = appendReplKind(dst, ReplFrames, b.Trace, b.TraceSeq)
	dst = binary.BigEndian.AppendUint64(dst, b.Term)
	dst = binary.BigEndian.AppendUint64(dst, b.CommitSeq)
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(b.Addr)))
	dst = append(dst, b.Addr...)
	dst = binary.BigEndian.AppendUint32(dst, b.N)
	return append(dst, b.Frames...)
}

// DecodeReplFrames decodes a ReplFrames payload. The returned Frames slice
// aliases frame.
func DecodeReplFrames(frame []byte) (FrameBatch, error) {
	var b FrameBatch
	body, tc, seq, err := replBody(frame, ReplFrames)
	if err != nil {
		return b, err
	}
	if len(body) < 8+8+2 {
		return b, ErrTruncated
	}
	b.Trace, b.TraceSeq = tc, seq
	b.Term = binary.BigEndian.Uint64(body[0:8])
	b.CommitSeq = binary.BigEndian.Uint64(body[8:16])
	alen := int(binary.BigEndian.Uint16(body[16:18]))
	if alen > MaxReplAddr {
		return b, ErrBadReplFrame
	}
	rest := body[18:]
	if len(rest) < alen+4 {
		return b, ErrTruncated
	}
	b.Addr = string(rest[:alen])
	b.N = binary.BigEndian.Uint32(rest[alen:])
	b.Frames = rest[alen+4:]
	if b.N == 0 && len(b.Frames) != 0 {
		return b, ErrBadReplFrame
	}
	// A WAL frame is at least its 8-byte header plus a 17-byte record, so a
	// claimed count the bytes cannot possibly hold is rejected here rather
	// than surfacing as a confusing CRC error in the apply loop.
	if uint64(len(b.Frames)) < uint64(b.N)*8 {
		return b, ErrBadReplFrame
	}
	return b, nil
}

// Ack is a decoded ReplAck payload. Both sequences are cumulative: one ack
// covers every record at or below it, which is what lets a follower
// acknowledge a whole window of frames with a single frame (see
// internal/repl — the ack window is the replication analogue of the WAL's
// group commit).
type Ack struct {
	AppliedSeq uint64
	DurableSeq uint64
	// Term is the highest leader term the acker has observed. A semi-sync
	// leader counts an ack toward its watermark only when the term is its
	// own (or 0 — a bootstrap follower that has not heard a term yet); an
	// ack from a newer term proves the leader was deposed and fences it
	// instead of advancing it.
	Term uint64
	// Trace/TraceSeq optionally echo the trace extension of a ReplFrames
	// batch this ack covers, letting the leader close the loop on a
	// sampled record's replication round trip.
	Trace    rtrace.Context
	TraceSeq uint64
}

// AppendReplAck appends a ReplAck payload to dst.
func AppendReplAck(dst []byte, a Ack) []byte {
	dst = appendReplKind(dst, ReplAck, a.Trace, a.TraceSeq)
	dst = binary.BigEndian.AppendUint64(dst, a.AppliedSeq)
	dst = binary.BigEndian.AppendUint64(dst, a.DurableSeq)
	dst = binary.BigEndian.AppendUint64(dst, a.Term)
	return dst
}

// DecodeReplAck decodes a ReplAck payload. A legacy 16-byte body (no term
// field) decodes with Term 0 so old frames stay readable; the encoder
// always writes the term.
func DecodeReplAck(frame []byte) (Ack, error) {
	var a Ack
	rest, tc, seq, err := replBody(frame, ReplAck)
	if err != nil {
		return a, err
	}
	if len(rest) != 8+8 && len(rest) != 8+8+8 {
		return a, ErrTruncated
	}
	a.Trace, a.TraceSeq = tc, seq
	a.AppliedSeq = binary.BigEndian.Uint64(rest[0:8])
	a.DurableSeq = binary.BigEndian.Uint64(rest[8:16])
	if len(rest) == 8+8+8 {
		a.Term = binary.BigEndian.Uint64(rest[16:24])
	}
	return a, nil
}

// PeerStatus is a decoded ReplStatus payload: one node's election-relevant
// identity. The exchange is symmetric — a prober dials a peer's
// replication listener, sends its own status, and reads the peer's in
// reply — so both sides learn the other's term; a freshly promoted leader
// announcing itself and a candidate ranking the field use the same frame.
type PeerStatus struct {
	Term       uint64
	IsLeader   bool
	Priority   int32
	AppliedSeq uint64
	// Advertise is the node's data-plane address — the stable identity
	// used as the deterministic election tiebreak, the same string on
	// every node regardless of which proxy or interface the probe dialed.
	Advertise string
	// ReplAddr is the node's replication listener address as it knows it.
	ReplAddr string
	// Trace/TraceSeq mirror the optional trace extension (zero = absent);
	// status probes normally carry none.
	Trace    rtrace.Context
	TraceSeq uint64
}

// AppendReplPeerStatus appends a ReplStatus payload to dst. It panics when
// either address exceeds MaxReplAddr — addresses are configuration, not
// attacker input, on the encoding side.
func AppendReplPeerStatus(dst []byte, ps PeerStatus) []byte {
	if len(ps.Advertise) > MaxReplAddr || len(ps.ReplAddr) > MaxReplAddr {
		panic(ErrBadReplFrame)
	}
	dst = appendReplKind(dst, ReplStatus, ps.Trace, ps.TraceSeq)
	dst = binary.BigEndian.AppendUint64(dst, ps.Term)
	var role byte
	if ps.IsLeader {
		role = 1
	}
	dst = append(dst, role)
	dst = binary.BigEndian.AppendUint32(dst, uint32(ps.Priority))
	dst = binary.BigEndian.AppendUint64(dst, ps.AppliedSeq)
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(ps.Advertise)))
	dst = append(dst, ps.Advertise...)
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(ps.ReplAddr)))
	return append(dst, ps.ReplAddr...)
}

// DecodeReplPeerStatus decodes a ReplStatus payload.
func DecodeReplPeerStatus(frame []byte) (PeerStatus, error) {
	var ps PeerStatus
	body, tc, seq, err := replBody(frame, ReplStatus)
	if err != nil {
		return ps, err
	}
	if len(body) < 8+1+4+8+2 {
		return ps, ErrTruncated
	}
	ps.Trace, ps.TraceSeq = tc, seq
	ps.Term = binary.BigEndian.Uint64(body[0:8])
	switch body[8] {
	case 0:
	case 1:
		ps.IsLeader = true
	default:
		return ps, ErrBadReplFrame
	}
	ps.Priority = int32(binary.BigEndian.Uint32(body[9:13]))
	ps.AppliedSeq = binary.BigEndian.Uint64(body[13:21])
	rest := body[21:]
	alen := int(binary.BigEndian.Uint16(rest))
	if alen > MaxReplAddr {
		return ps, ErrBadReplFrame
	}
	rest = rest[2:]
	if len(rest) < alen+2 {
		return ps, ErrTruncated
	}
	ps.Advertise = string(rest[:alen])
	rest = rest[alen:]
	rlen := int(binary.BigEndian.Uint16(rest))
	if rlen > MaxReplAddr {
		return ps, ErrBadReplFrame
	}
	rest = rest[2:]
	if len(rest) != rlen {
		return ps, ErrTruncated
	}
	ps.ReplAddr = string(rest)
	return ps, nil
}

// SnapshotChunk is a decoded ReplSnapshot payload: one slice of a
// snapshot's ascending key stream. Keys is freshly allocated (the apply
// side retains chunks while the bulk load runs).
type SnapshotChunk struct {
	WALSeq uint64
	Final  bool
	Keys   []int64
	// Trace/TraceSeq mirror the optional trace extension (zero = absent);
	// snapshot chunks normally carry none.
	Trace    rtrace.Context
	TraceSeq uint64
}

// AppendReplSnapshot appends a ReplSnapshot payload to dst. It panics when
// keys exceed MaxSnapshotChunk (the sender chunks before encoding).
func AppendReplSnapshot(dst []byte, c SnapshotChunk) []byte {
	if len(c.Keys) > MaxSnapshotChunk {
		panic(ErrBadReplFrame)
	}
	dst = appendReplKind(dst, ReplSnapshot, c.Trace, c.TraceSeq)
	dst = binary.BigEndian.AppendUint64(dst, c.WALSeq)
	var fin byte
	if c.Final {
		fin = 1
	}
	dst = append(dst, fin)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(c.Keys)))
	for _, k := range c.Keys {
		dst = binary.BigEndian.AppendUint64(dst, uint64(k))
	}
	return dst
}

// DecodeReplSnapshot decodes a ReplSnapshot payload.
func DecodeReplSnapshot(frame []byte) (SnapshotChunk, error) {
	var c SnapshotChunk
	body, tc, seq, err := replBody(frame, ReplSnapshot)
	if err != nil {
		return c, err
	}
	if len(body) < 8+1+4 {
		return c, ErrTruncated
	}
	c.Trace, c.TraceSeq = tc, seq
	c.WALSeq = binary.BigEndian.Uint64(body[0:8])
	switch body[8] {
	case 0:
	case 1:
		c.Final = true
	default:
		return c, ErrBadReplFrame
	}
	n := binary.BigEndian.Uint32(body[9:13])
	if n > MaxSnapshotChunk {
		return c, ErrBadReplFrame
	}
	rest := body[13:]
	if uint64(len(rest)) != uint64(n)*8 {
		return c, ErrTruncated
	}
	if n > 0 {
		c.Keys = make([]int64, n)
		for i := range c.Keys {
			c.Keys[i] = int64(binary.BigEndian.Uint64(rest[i*8:]))
		}
	}
	return c, nil
}
