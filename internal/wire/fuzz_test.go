package wire

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"

	"repro/internal/rtrace"
)

// The fuzz targets hold the frame decoders to two properties on arbitrary
// bytes: never panic or over-allocate, and on accept be consistent with
// the encoder (decode∘encode∘decode is the identity). Seed corpora live
// in testdata/fuzz and `make fuzz-smoke` gives each target a short
// budget in CI; run `go test -fuzz FuzzDecodeRequest ./internal/wire`
// for a real session.

func FuzzDecodeRequest(f *testing.F) {
	f.Add(AppendRequest(nil, Request{ID: 1, Op: OpInsert, DeadlineMS: 50, Key: 42}))
	f.Add(AppendRequest(nil, Request{ID: 2, Op: OpRange, Key: -10, To: 10, Limit: 100}))
	f.Add(AppendRequest(nil, Request{ID: 3, Op: OpLookup, Key: 7})[:5])
	traced := rtrace.Context{TraceID: 0xfeedbeefcafe, SpanID: 7, Flags: rtrace.FlagSampled}
	f.Add(AppendRequest(nil, Request{ID: 4, Op: OpInsert, Key: 9, Trace: traced}))
	f.Add(AppendRequest(nil, Request{ID: 5, Op: OpRange, Key: -1, To: 1, Limit: 8, Trace: traced}))
	f.Add(AppendRequest(nil, Request{ID: 6, Op: OpLookupAt, Key: 3, MinSeq: 11, Trace: traced})[:reqBaseLen+4])
	f.Fuzz(func(t *testing.T, data []byte) {
		q, err := DecodeRequest(data)
		if err != nil {
			if !errors.Is(err, ErrTruncated) {
				t.Fatalf("DecodeRequest: unexpected error class %v", err)
			}
			return
		}
		q2, err := DecodeRequest(AppendRequest(nil, q))
		if err != nil {
			t.Fatalf("re-decode of re-encoded request: %v", err)
		}
		if q2 != q {
			t.Fatalf("round trip changed the request: %+v -> %+v", q, q2)
		}
	})
}

func FuzzDecodeResponse(f *testing.F) {
	f.Add(AppendResponse(nil, Response{ID: 1, Status: StatusOK, OK: true}))
	f.Add(AppendResponse(nil, Response{ID: 2, Status: StatusOK, Keys: []int64{1, 2, 3}}))
	f.Add(AppendResponse(nil, Response{ID: 3, Status: StatusOK, Keys: []int64{}}))
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 9, 0, 1, 0xff, 0xff, 0xff, 0xff}) // huge key count
	// Fenced/NotLeader responses carry a redirect tail instead of keys;
	// cover both the hinted and hintless forms plus a truncated tail.
	f.Add(AppendResponse(nil, Response{ID: 4, Status: StatusFenced, Leader: "10.0.0.2:4000"}))
	f.Add(AppendResponse(nil, Response{ID: 5, Status: StatusFenced}))
	f.Add(AppendResponse(nil, Response{ID: 6, Status: StatusNotLeader, Leader: "h:1"}))
	fenced := AppendResponse(nil, Response{ID: 7, Status: StatusFenced, Leader: "10.0.0.3:4000"})
	f.Add(fenced[:len(fenced)-5])
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := DecodeResponse(data)
		if err != nil {
			if !errors.Is(err, ErrTruncated) {
				t.Fatalf("DecodeResponse: unexpected error class %v", err)
			}
			return
		}
		// The decoder must never trust a length prefix beyond the bytes
		// actually present (the uint32 n*8 wrap-around trap).
		if len(p.Keys) > len(data)/8 {
			t.Fatalf("decoded %d keys out of a %d-byte frame", len(p.Keys), len(data))
		}
		p2, err := DecodeResponse(AppendResponse(nil, p))
		if err != nil {
			t.Fatalf("re-decode of re-encoded response: %v", err)
		}
		if !reflect.DeepEqual(p, p2) {
			t.Fatalf("round trip changed the response: %+v -> %+v", p, p2)
		}
	})
}

func FuzzDecodeBatchOps(f *testing.F) {
	ops := []BatchOp{{Op: OpInsert, Key: 1}, {Op: OpDelete, Key: -2}, {Op: OpLookup, Key: 3}}
	traced := rtrace.Context{TraceID: 0xabad1dea, SpanID: 3, Flags: rtrace.FlagSampled}
	f.Add(AppendBatchRequest(nil, 9, 25, rtrace.Context{}, ops))
	f.Add(AppendBatchRequest(nil, 10, 0, rtrace.Context{}, nil))
	f.Add(AppendBatchRequest(nil, 11, 0, rtrace.Context{}, ops)[:reqBaseLen+2])
	f.Add(AppendBatchRequest(nil, 12, 25, traced, ops))
	f.Add(AppendBatchRequest(nil, 13, 0, traced, ops)[:reqBaseLen+rtrace.ContextLen+2])
	f.Fuzz(func(t *testing.T, data []byte) {
		decoded, err := DecodeBatchOps(data, nil)
		if err != nil {
			return
		}
		for i, o := range decoded {
			if o.Op != OpInsert && o.Op != OpDelete && o.Op != OpLookup {
				t.Fatalf("op %d: accepted invalid opcode %d", i, o.Op)
			}
		}
		// The server only reaches DecodeBatchOps after DecodeRequest said
		// Op == OpBatch; the tail decoder itself never looks at the op
		// byte, so gate the round trip the same way.
		q, err := DecodeRequest(data)
		if err != nil || q.Op != OpBatch {
			return
		}
		again, err := DecodeBatchOps(AppendBatchRequest(nil, q.ID, q.DeadlineMS, q.Trace, decoded), nil)
		if err != nil {
			t.Fatalf("re-decode of re-encoded batch: %v", err)
		}
		if !reflect.DeepEqual(decoded, again) {
			t.Fatalf("round trip changed the ops: %+v -> %+v", decoded, again)
		}
	})
}

func FuzzDecodeBatchResponse(f *testing.F) {
	results := []BatchResult{{Status: StatusOK, OK: true}, {Status: StatusCapacity}, {Status: StatusKeyOutOfRange}}
	f.Add(AppendBatchResponse(nil, 4, results))
	f.Add(AppendBatchResponse(nil, 5, nil))
	f.Add(AppendResponse(nil, Response{ID: 6, Status: StatusOverloaded}))
	f.Fuzz(func(t *testing.T, data []byte) {
		id, st, res, err := DecodeBatchResponse(data, nil)
		if err != nil {
			return
		}
		if st != StatusOK {
			if len(res) != 0 {
				t.Fatalf("frame-level status %v must carry no per-op tail, got %d", st, len(res))
			}
			return
		}
		id2, st2, res2, err := DecodeBatchResponse(AppendBatchResponse(nil, id, res), nil)
		if err != nil {
			t.Fatalf("re-decode of re-encoded batch response: %v", err)
		}
		if id2 != id || st2 != st || !reflect.DeepEqual(res, res2) {
			t.Fatalf("round trip changed the response: (%d %v %+v) -> (%d %v %+v)", id, st, res, id2, st2, res2)
		}
	})
}

func FuzzReadFrame(f *testing.F) {
	var framed bytes.Buffer
	WriteFrame(&framed, AppendRequest(nil, Request{ID: 1, Op: OpInsert, Key: 42}))
	f.Add(framed.Bytes())
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{0, 0, 0, 2, 0xab})
	f.Fuzz(func(t *testing.T, data []byte) {
		payload, _, err := ReadFrame(bytes.NewReader(data), nil)
		if err != nil {
			if errors.Is(err, ErrFrameTooBig) || errors.Is(err, ErrTruncated) ||
				errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return
			}
			t.Fatalf("ReadFrame: unexpected error class %v", err)
		}
		if len(payload) > MaxFrame {
			t.Fatalf("ReadFrame returned a %d-byte payload past MaxFrame", len(payload))
		}
		if len(payload) > len(data) {
			t.Fatalf("ReadFrame conjured %d payload bytes from %d input bytes", len(payload), len(data))
		}
	})
}
