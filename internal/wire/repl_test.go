package wire

import (
	"errors"
	"reflect"
	"testing"
)

func TestReplSubscribeRoundTrip(t *testing.T) {
	want := Subscribe{FromSeq: 1 << 40, Term: 7}
	got, err := DecodeReplSubscribe(AppendReplSubscribe(nil, want))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got != want {
		t.Fatalf("round trip: %+v != %+v", got, want)
	}
	if _, err := DecodeReplSubscribe(AppendReplAck(nil, Ack{})); !errors.Is(err, ErrWrongKind) {
		t.Fatalf("wrong kind: got %v, want ErrWrongKind", err)
	}
}

func TestReplFramesRoundTrip(t *testing.T) {
	frames := []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}
	want := FrameBatch{Term: 3, CommitSeq: 99, Addr: "10.0.0.1:9200", N: 2, Frames: frames}
	got, err := DecodeReplFrames(AppendReplFrames(nil, want))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Term != want.Term || got.CommitSeq != want.CommitSeq || got.Addr != want.Addr ||
		got.N != want.N || !reflect.DeepEqual(got.Frames, want.Frames) {
		t.Fatalf("round trip: %+v != %+v", got, want)
	}

	// A heartbeat has no frame bytes; trailing garbage after n=0 is a
	// protocol error, not silently ignored bytes.
	hb := AppendReplFrames(nil, FrameBatch{Term: 4, Addr: "h:1"})
	if b, err := DecodeReplFrames(hb); err != nil || b.N != 0 {
		t.Fatalf("heartbeat decode: %+v, %v", b, err)
	}
	if _, err := DecodeReplFrames(append(hb, 0xff)); !errors.Is(err, ErrBadReplFrame) {
		t.Fatalf("heartbeat with trailing bytes: got %v, want ErrBadReplFrame", err)
	}

	// A claimed count the bytes cannot hold is rejected.
	bogus := AppendReplFrames(nil, FrameBatch{N: 100, Frames: []byte{1, 2, 3}})
	if _, err := DecodeReplFrames(bogus); !errors.Is(err, ErrBadReplFrame) {
		t.Fatalf("impossible count: got %v, want ErrBadReplFrame", err)
	}
}

func TestReplAckRoundTrip(t *testing.T) {
	want := Ack{AppliedSeq: 123, DurableSeq: 120}
	got, err := DecodeReplAck(AppendReplAck(nil, want))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got != want {
		t.Fatalf("round trip: %+v != %+v", got, want)
	}
}

func TestReplSnapshotRoundTrip(t *testing.T) {
	want := SnapshotChunk{WALSeq: 55, Final: true, Keys: []int64{-9, -1, 0, 3, 1 << 50}}
	got, err := DecodeReplSnapshot(AppendReplSnapshot(nil, want))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.WALSeq != want.WALSeq || got.Final != want.Final || !reflect.DeepEqual(got.Keys, want.Keys) {
		t.Fatalf("round trip: %+v != %+v", got, want)
	}
}

func TestNotLeaderResponseCarriesLeader(t *testing.T) {
	want := Response{ID: 9, Status: StatusNotLeader, Leader: "node-a:9000"}
	got, err := DecodeResponse(AppendResponse(nil, want))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip: %+v != %+v", got, want)
	}
	// An empty leader (follower that has lost its lease and knows no
	// leader) still round-trips.
	want = Response{ID: 10, Status: StatusNotLeader}
	if got, err = DecodeResponse(AppendResponse(nil, want)); err != nil || !reflect.DeepEqual(got, want) {
		t.Fatalf("empty leader round trip: %+v, %v", got, err)
	}
}

func TestLookupAtRequestRoundTrip(t *testing.T) {
	want := Request{ID: 4, Op: OpLookupAt, DeadlineMS: 250, Key: 77, MinSeq: 1 << 33}
	got, err := DecodeRequest(AppendRequest(nil, want))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got != want {
		t.Fatalf("round trip: %+v != %+v", got, want)
	}
	if _, err := DecodeRequest(AppendRequest(nil, want)[:reqBaseLen+3]); !errors.Is(err, ErrTruncated) {
		t.Fatalf("truncated minSeq tail: got %v, want ErrTruncated", err)
	}
}
