// Package wire defines the binary protocol spoken between the bstserve
// server (internal/server) and its client (internal/client).
//
// Every message is a length-prefixed frame:
//
//	uint32 length (big-endian, length of the payload that follows)
//	payload
//
// A request payload is
//
//	uint64 id          correlation id, echoed in the response
//	uint8  op          OpInsert | OpDelete | OpLookup | OpRange
//	uint32 deadline_ms time budget for the request (0 = server default)
//	int64  key         the key (Range: lower bound, inclusive)
//	[op bit 7 set: 16-byte trace context — see below]
//	[Range only]
//	int64  to          upper bound, inclusive
//	uint32 limit       maximum keys to return (0 = server default)
//
// Tracing rides an optional extension: when bit 7 of the op/kind byte
// (TraceFlag) is set, a 16-byte rtrace context (uint64 trace id, uint32
// span id, uint8 flags, 3 reserved zero bytes) is inserted immediately
// after the 21-byte base header and every op-specific tail shifts by 16.
// Op codes never use bit 7, so legacy frames decode unchanged and
// decoders mask the bit out before interpreting the op. Responses carry
// no extension — the requesting client already holds the context.
// Replication frames place the same context (plus the covered WAL
// sequence) directly after the kind byte; see repl.go.
//
// and a response payload is
//
//	uint64 id          copied from the request
//	uint8  status      see Status
//	uint8  ok          operation result bit (insert/delete: changed,
//	                   lookup: present); 0 unless status is StatusOK
//	[Range + StatusOK only]
//	uint32 count
//	count × int64 keys (ascending)
//
// An OpBatch request carries up to MaxBatchOps point operations in one
// frame; its payload extends the base request (whose key field is reserved
// and must be 0) with
//
//	uint16 count
//	count × { uint8 subop (OpInsert|OpDelete|OpLookup); int64 key }
//
// and a StatusOK batch response extends the base response (ok = 0) with
//
//	uint32 count       equal to the request's count
//	count × { uint8 status; uint8 ok }
//
// so every operation reports its own status: one key hitting capacity or
// the key range does not poison its neighbours. A batch response whose
// frame-level status is not StatusOK has no per-op tail — the frame status
// applies to every operation (the batch was rejected before execution).
//
// The protocol is deliberately dumb: no negotiation, no streaming, one
// response per request. Clients may pipeline — ids disambiguate, and the
// server answers frames in order per connection, so a pipelined client can
// keep many frames in flight and pay one round trip for all of them (see
// internal/client's Pipeline). Frames above MaxFrame are a protocol error
// and the peer should drop the connection.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"

	"repro/internal/rtrace"
)

// MaxFrame bounds a frame payload. Large enough for a full range response
// (RangeLimit keys), small enough that a malicious length prefix cannot make
// the server allocate unboundedly.
const MaxFrame = 64 << 10

// TraceFlag marks an op/kind byte whose frame carries the optional 16-byte
// trace-context extension. Operation and replication kind codes stay below
// 0x80, so the bit is never ambiguous.
const TraceFlag = 0x80

// Operation codes.
const (
	OpInsert uint8 = 1 // TryInsert(key); ok = set changed
	OpDelete uint8 = 2 // Delete(key); ok = set changed
	OpLookup uint8 = 3 // Contains(key); ok = present
	OpRange  uint8 = 4 // keys in [key, to], at most limit
	OpBatch  uint8 = 5 // up to MaxBatchOps point ops, per-op status

	// 6–9 and 11 are the replication frame kinds (see repl.go); they never
	// appear as data-plane request ops.

	// OpLookupAt is Contains with a sequence floor: the request's payload
	// extends the base request with a uint64 minSeq, and the server blocks
	// until its applied sequence reaches minSeq (read-your-writes on a
	// follower) or the deadline expires (StatusReplLag).
	OpLookupAt uint8 = 10

	// OpAggregate is an order-statistics query (rank/select/count/sum over
	// a key range). The request tail and the dedicated response codec live
	// in aggregate.go; the response value is a single int64, so the generic
	// Response shape does not apply.
	OpAggregate uint8 = 12
)

// MaxBatchOps bounds the operations one OpBatch frame may carry. At 9
// bytes per op the largest batch request stays well inside MaxFrame, and
// the bound keeps a single frame's tree time short enough that batching
// cannot starve the connection's deadline handling.
const MaxBatchOps = 1024

// OpName returns a human-readable operation name.
func OpName(op uint8) string {
	switch op {
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	case OpLookup:
		return "lookup"
	case OpRange:
		return "range"
	case OpBatch:
		return "batch"
	case OpLookupAt:
		return "lookup-at"
	case OpAggregate:
		return "aggregate"
	default:
		return fmt.Sprintf("op(%d)", op)
	}
}

// Status is a response status code. The three degradation codes are
// distinct on purpose: a client backs off differently for a server that is
// momentarily saturated (StatusOverloaded), a tree that is out of arena
// slots until deletes free some (StatusCapacity), and a server that is
// shutting down for good (StatusDraining).
type Status uint8

const (
	// StatusOK: the operation executed; the ok bit carries its result.
	StatusOK Status = iota
	// StatusOverloaded: load shed — the in-flight cap was reached and the
	// request was rejected *before* touching the tree. Retry after backoff.
	StatusOverloaded
	// StatusCapacity: the tree's arena is exhausted (bst.ErrCapacity).
	// Retry after a longer backoff; capacity returns only after deletes
	// plus reclamation free slots.
	StatusCapacity
	// StatusKeyOutOfRange: the key exceeds bst.MaxKey. Permanent.
	StatusKeyOutOfRange
	// StatusDeadlineExceeded: the request's time budget expired before or
	// during execution. The operation was not (or only partially, for
	// Range) performed.
	StatusDeadlineExceeded
	// StatusDraining: the server is shutting down gracefully. The
	// connection will close; reconnect elsewhere or retry after backoff.
	StatusDraining
	// StatusBadRequest: malformed frame or unknown op. Permanent; the
	// server drops the connection after sending it when the stream can no
	// longer be trusted.
	StatusBadRequest
	// StatusInternal: the handler panicked; the request's effect is
	// unknown and the connection is poisoned and will close.
	StatusInternal
	// StatusNotLeader: this replica is a follower and refuses writes; the
	// response's leader-address tail names who to talk to. Retry there.
	StatusNotLeader
	// StatusReplLag: an OpLookupAt's sequence floor was not reached before
	// the deadline — the follower is lagging. Retry, or read the leader.
	StatusReplLag
	// StatusFenced: this node was deposed by a newer leader term and
	// refuses the write — distinct from StatusNotLeader so clients know
	// their learned leader is stale, not merely wrong, and drop it from
	// any cache. The response carries the same leader-address tail as
	// StatusNotLeader ("" when the deposed node has not yet heard who
	// won). Retry against the named leader.
	StatusFenced
	// StatusNoIndex: an OpAggregate reached a server whose store was built
	// without order statistics (bst.WithOrderStatistics). Permanent for
	// this server — the client surfaces it as ErrNoOrderStats rather than
	// retrying.
	StatusNoIndex
)

func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusOverloaded:
		return "overloaded"
	case StatusCapacity:
		return "capacity"
	case StatusKeyOutOfRange:
		return "key-out-of-range"
	case StatusDeadlineExceeded:
		return "deadline-exceeded"
	case StatusDraining:
		return "draining"
	case StatusBadRequest:
		return "bad-request"
	case StatusInternal:
		return "internal"
	case StatusNotLeader:
		return "not-leader"
	case StatusReplLag:
		return "repl-lag"
	case StatusFenced:
		return "fenced"
	case StatusNoIndex:
		return "no-index"
	default:
		return fmt.Sprintf("status(%d)", uint8(s))
	}
}

// Retryable reports whether a client may retry a request that got this
// status (on the same or a fresh connection). Deadline expiry is not
// retryable here: whether budget remains is the caller's call.
func (s Status) Retryable() bool {
	return s == StatusOverloaded || s == StatusCapacity || s == StatusDraining
}

// Request is one decoded request frame.
type Request struct {
	ID         uint64
	Op         uint8
	DeadlineMS uint32 // 0 = use the server's default deadline
	Key        int64
	To         int64  // OpRange only
	Limit      uint32 // OpRange only; 0 = server default
	MinSeq     uint64 // OpLookupAt only: applied-sequence floor
	// Trace is the optional trace context (zero = untraced). Encoded only
	// when non-zero, signalled by TraceFlag on the op byte.
	Trace rtrace.Context
}

// Response is one decoded response frame.
type Response struct {
	ID     uint64
	Status Status
	OK     bool
	Keys   []int64 // OpRange results
	Leader string  // StatusNotLeader/StatusFenced only: the leader's data address
}

// Frame-shape errors.
var (
	ErrFrameTooBig = errors.New("wire: frame exceeds MaxFrame")
	ErrTruncated   = errors.New("wire: truncated frame")
	ErrBatchTooBig = errors.New("wire: batch exceeds MaxBatchOps")
	ErrBadBatchOp  = errors.New("wire: batch carries a non-point operation")
)

const (
	reqBaseLen   = 8 + 1 + 4 + 8 // id, op, deadline, key
	reqRangeLen  = reqBaseLen + 8 + 4
	reqMinSeqLen = reqBaseLen + 8
	respBaseLen  = 8 + 1 + 1 // id, status, ok
)

// AppendRequest appends q's payload encoding to dst and returns it. A
// non-zero Trace sets TraceFlag on the op byte and inserts the 16-byte
// context after the base header.
func AppendRequest(dst []byte, q Request) []byte {
	dst = binary.BigEndian.AppendUint64(dst, q.ID)
	op := q.Op
	traced := q.Trace != (rtrace.Context{})
	if traced {
		op |= TraceFlag
	}
	dst = append(dst, op)
	dst = binary.BigEndian.AppendUint32(dst, q.DeadlineMS)
	dst = binary.BigEndian.AppendUint64(dst, uint64(q.Key))
	if traced {
		dst = rtrace.AppendContext(dst, q.Trace)
	}
	if q.Op == OpRange {
		dst = binary.BigEndian.AppendUint64(dst, uint64(q.To))
		dst = binary.BigEndian.AppendUint32(dst, q.Limit)
	}
	if q.Op == OpLookupAt {
		dst = binary.BigEndian.AppendUint64(dst, q.MinSeq)
	}
	return dst
}

// DecodeRequest decodes a request payload, masking TraceFlag out of the op
// byte and filling Trace when the extension is present.
func DecodeRequest(frame []byte) (Request, error) {
	var q Request
	if len(frame) < reqBaseLen {
		return q, ErrTruncated
	}
	q.ID = binary.BigEndian.Uint64(frame[0:8])
	q.Op = frame[8]
	q.DeadlineMS = binary.BigEndian.Uint32(frame[9:13])
	q.Key = int64(binary.BigEndian.Uint64(frame[13:21]))
	off := reqBaseLen
	if q.Op&TraceFlag != 0 {
		q.Op &^= TraceFlag
		tc, ok := rtrace.DecodeContext(frame[off:])
		if !ok {
			return q, ErrTruncated
		}
		q.Trace = tc
		off += rtrace.ContextLen
	}
	if q.Op == OpRange {
		if len(frame) < off+12 {
			return q, ErrTruncated
		}
		q.To = int64(binary.BigEndian.Uint64(frame[off : off+8]))
		q.Limit = binary.BigEndian.Uint32(frame[off+8 : off+12])
	}
	if q.Op == OpLookupAt {
		if len(frame) < off+8 {
			return q, ErrTruncated
		}
		q.MinSeq = binary.BigEndian.Uint64(frame[off : off+8])
	}
	return q, nil
}

// AppendResponse appends p's payload encoding to dst and returns it.
func AppendResponse(dst []byte, p Response) []byte {
	dst = binary.BigEndian.AppendUint64(dst, p.ID)
	dst = append(dst, uint8(p.Status))
	var ok byte
	if p.OK {
		ok = 1
	}
	dst = append(dst, ok)
	if p.Status == StatusNotLeader || p.Status == StatusFenced {
		// The redirect tail replaces the keys tail: a NotLeader/Fenced
		// response never carries keys, and the status byte tells the
		// decoder which shape follows.
		addr := p.Leader
		if len(addr) > MaxReplAddr {
			addr = addr[:MaxReplAddr]
		}
		dst = binary.BigEndian.AppendUint16(dst, uint16(len(addr)))
		return append(dst, addr...)
	}
	if p.Keys != nil {
		dst = binary.BigEndian.AppendUint32(dst, uint32(len(p.Keys)))
		for _, k := range p.Keys {
			dst = binary.BigEndian.AppendUint64(dst, uint64(k))
		}
	}
	return dst
}

// DecodeResponse decodes a response payload.
func DecodeResponse(frame []byte) (Response, error) {
	var p Response
	if len(frame) < respBaseLen {
		return p, ErrTruncated
	}
	p.ID = binary.BigEndian.Uint64(frame[0:8])
	p.Status = Status(frame[8])
	p.OK = frame[9] != 0
	if p.Status == StatusNotLeader || p.Status == StatusFenced {
		rest := frame[respBaseLen:]
		if len(rest) < 2 {
			return p, ErrTruncated
		}
		n := int(binary.BigEndian.Uint16(rest))
		rest = rest[2:]
		if n > MaxReplAddr || len(rest) != n {
			return p, ErrTruncated
		}
		p.Leader = string(rest)
		return p, nil
	}
	if len(frame) > respBaseLen {
		rest := frame[respBaseLen:]
		if len(rest) < 4 {
			return p, ErrTruncated
		}
		n := binary.BigEndian.Uint32(rest)
		rest = rest[4:]
		// 64-bit compare: n*8 in uint32 wraps for n >= 1<<29, which would
		// let a hostile length prefix through to a giant allocation.
		if uint64(len(rest)) != uint64(n)*8 {
			return p, ErrTruncated
		}
		p.Keys = make([]int64, n)
		for i := range p.Keys {
			p.Keys[i] = int64(binary.BigEndian.Uint64(rest[i*8:]))
		}
	}
	return p, nil
}

// BatchOp is one point operation inside an OpBatch request.
type BatchOp struct {
	Op  uint8 // OpInsert, OpDelete or OpLookup
	Key int64
}

// BatchResult is one operation's outcome inside an OpBatch response.
type BatchResult struct {
	Status Status
	OK     bool
}

// AppendBatchRequest appends an OpBatch request payload to dst and returns
// it. It panics when ops exceeds MaxBatchOps or contains a non-point
// subop — both are programmer errors on the encoding side (the client
// splits oversized batches before encoding).
func AppendBatchRequest(dst []byte, id uint64, deadlineMS uint32, tc rtrace.Context, ops []BatchOp) []byte {
	if len(ops) > MaxBatchOps {
		panic(ErrBatchTooBig)
	}
	dst = binary.BigEndian.AppendUint64(dst, id)
	op := OpBatch
	if tc != (rtrace.Context{}) {
		op |= TraceFlag
	}
	dst = append(dst, op)
	dst = binary.BigEndian.AppendUint32(dst, deadlineMS)
	dst = binary.BigEndian.AppendUint64(dst, 0) // reserved key field
	if tc != (rtrace.Context{}) {
		dst = rtrace.AppendContext(dst, tc)
	}
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(ops)))
	for _, o := range ops {
		if o.Op != OpInsert && o.Op != OpDelete && o.Op != OpLookup {
			panic(ErrBadBatchOp)
		}
		dst = append(dst, o.Op)
		dst = binary.BigEndian.AppendUint64(dst, uint64(o.Key))
	}
	return dst
}

// DecodeBatchOps decodes the per-op tail of an OpBatch request payload
// (the caller has already run DecodeRequest on frame and seen Op ==
// OpBatch), appending the operations to dst so a per-connection scratch
// slice makes the steady-state decode allocation-free.
func DecodeBatchOps(frame []byte, dst []BatchOp) ([]BatchOp, error) {
	off := reqBaseLen
	if len(frame) > 8 && frame[8]&TraceFlag != 0 {
		off += rtrace.ContextLen
	}
	if len(frame) < off+2 {
		return dst, ErrTruncated
	}
	rest := frame[off:]
	n := int(binary.BigEndian.Uint16(rest))
	rest = rest[2:]
	if n > MaxBatchOps {
		return dst, ErrBatchTooBig
	}
	if len(rest) != n*9 {
		return dst, ErrTruncated
	}
	for i := 0; i < n; i++ {
		op := rest[i*9]
		if op != OpInsert && op != OpDelete && op != OpLookup {
			return dst, ErrBadBatchOp
		}
		dst = append(dst, BatchOp{
			Op:  op,
			Key: int64(binary.BigEndian.Uint64(rest[i*9+1:])),
		})
	}
	return dst, nil
}

// AppendBatchResponse appends a StatusOK OpBatch response payload carrying
// one result per operation. Frame-level failures (overload, draining, bad
// request) use a plain AppendResponse with no per-op tail.
func AppendBatchResponse(dst []byte, id uint64, results []BatchResult) []byte {
	dst = binary.BigEndian.AppendUint64(dst, id)
	dst = append(dst, uint8(StatusOK))
	dst = append(dst, 0) // the frame-level ok bit is unused for batches
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(results)))
	for _, r := range results {
		var ok byte
		if r.OK {
			ok = 1
		}
		dst = append(dst, uint8(r.Status), ok)
	}
	return dst
}

// DecodeBatchResponse decodes an OpBatch response payload, appending the
// per-op results to dst. When the frame-level status is not StatusOK there
// is no per-op tail: the returned results are dst unchanged and st tells
// the caller what happened to the whole batch.
func DecodeBatchResponse(frame []byte, dst []BatchResult) (id uint64, st Status, results []BatchResult, err error) {
	if len(frame) < respBaseLen {
		return 0, 0, dst, ErrTruncated
	}
	id = binary.BigEndian.Uint64(frame[0:8])
	st = Status(frame[8])
	if st != StatusOK {
		return id, st, dst, nil
	}
	rest := frame[respBaseLen:]
	if len(rest) < 4 {
		return id, st, dst, ErrTruncated
	}
	n := int(binary.BigEndian.Uint32(rest))
	rest = rest[4:]
	if n > MaxBatchOps {
		return id, st, dst, ErrBatchTooBig
	}
	if len(rest) != n*2 {
		return id, st, dst, ErrTruncated
	}
	for i := 0; i < n; i++ {
		dst = append(dst, BatchResult{
			Status: Status(rest[i*2]),
			OK:     rest[i*2+1] != 0,
		})
	}
	return id, st, dst, nil
}

// bufPool recycles frame-payload buffers across requests. The hot paths
// that cannot keep a per-connection scratch buffer — the pipelined client
// encoding many concurrent requests, the server building responses while
// the previous one is still being flushed — get and put here instead of
// allocating per frame. Buffers start small (a point request is ~21 bytes)
// and grow in place; anything that grew past MaxFrame is dropped rather
// than pooled.
var bufPool = sync.Pool{New: func() any { b := make([]byte, 0, 256); return &b }}

// GetBuf returns a zero-length reusable buffer from the frame pool.
func GetBuf() *[]byte { return bufPool.Get().(*[]byte) }

// PutBuf returns a buffer obtained from GetBuf to the pool.
func PutBuf(b *[]byte) {
	if cap(*b) > MaxFrame {
		return
	}
	*b = (*b)[:0]
	bufPool.Put(b)
}

// WriteFrame writes the 4-byte length prefix followed by payload.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrame {
		return ErrFrameTooBig
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one length-prefixed frame, reusing scratch when it is
// large enough. It returns the payload slice (valid until the next call
// with the same scratch) and the possibly-grown scratch buffer.
func ReadFrame(r io.Reader, scratch []byte) (payload, newScratch []byte, err error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, scratch, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, scratch, ErrFrameTooBig
	}
	if uint32(cap(scratch)) < n {
		scratch = make([]byte, n)
	}
	buf := scratch[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		// A partial body is a truncated frame regardless of the underlying
		// error (timeouts included): the stream is no longer framed.
		if err == io.ErrUnexpectedEOF {
			err = ErrTruncated
		}
		return nil, scratch, err
	}
	return buf, scratch, nil
}
