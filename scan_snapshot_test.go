package bst_test

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	bst "repro"
)

// TestScanNeverResurrectsAckedBatchedDelete pins down the property the
// durability checkpointer depends on: a Scan started after a batched
// delete returned must not observe the deleted key, even while other
// batched deletes are still in flight and unrelated keys churn around it.
// Scan is only weakly consistent — but "weak" means concurrent ops may
// land on either side of the pin, never that a mutation acknowledged
// before the scan began can un-happen. A snapshot that resurrected an
// acked delete would ack a checkpoint the recovery path then contradicts.
//
// Victim keys (even) are deleted exactly once, in batches, and never
// re-inserted, so observing one after its delete was acked is
// unambiguously a violation. Noise keys (odd) are inserted and deleted
// concurrently throughout to keep the tree structure moving — edge
// flags, node recycling, rotations of the external structure — while the
// scans run. Runs under -race in `make ci`.
func TestScanNeverResurrectsAckedBatchedDelete(t *testing.T) {
	scanResurrectionCheck(t, bst.New(bst.WithCapacity(1<<20), bst.WithReclamation()))
}

// TestShardedScanNeverResurrectsAckedBatchedDelete is the same property
// over a forest: the merged Scan pins one epoch per shard, the batched
// deletes split at shard boundaries and run per-shard — an acked delete
// that completed before ANY shard's pin must never surface in the merged
// stream, no matter which shard it routed to.
func TestShardedScanNeverResurrectsAckedBatchedDelete(t *testing.T) {
	scanResurrectionCheck(t, bst.New(bst.WithCapacity(1<<20), bst.WithReclamation(),
		bst.WithShards(4), bst.WithShardRange(0, 2*scanVictims)))
}

const scanVictims = 4000 // even keys 0, 2, 4, ...

func scanResurrectionCheck(t *testing.T, tree *bst.Tree) {
	const (
		victims   = scanVictims
		noiseKeys = 512 // odd keys 1, 3, 5, ...
		batch     = 64
	)
	defer tree.Close()

	setup := tree.NewAccessor()
	for i := 0; i < victims; i++ {
		if !setup.Insert(int64(2 * i)) {
			t.Fatalf("prefill Insert(%d) = false", 2*i)
		}
	}
	setup.Close()

	// acked[i] flips to true only after the DeleteBatch covering victim
	// key 2i has returned — the in-process analogue of the wire ack.
	acked := make([]atomic.Bool, victims)
	done := make(chan struct{})
	stopNoise := make(chan struct{})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // the batched deleter
		defer wg.Done()
		defer close(done)
		acc := tree.NewAccessor()
		defer acc.Close()
		order := rand.New(rand.NewSource(1)).Perm(victims)
		keys := make([]int64, 0, batch)
		idx := make([]int, 0, batch)
		out := make([]bst.OpResult, batch)
		for start := 0; start < victims; start += batch {
			keys, idx = keys[:0], idx[:0]
			for _, vi := range order[start:min(start+batch, victims)] {
				keys = append(keys, int64(2*vi))
				idx = append(idx, vi)
			}
			acc.DeleteBatch(keys, out[:len(keys)])
			for j, vi := range idx {
				if out[j].Err != nil || !out[j].OK {
					t.Errorf("DeleteBatch(%d) = %+v on a live victim", keys[j], out[j])
					return
				}
				acked[vi].Store(true)
			}
		}
	}()

	for w := 0; w < 3; w++ { // structural churn on the odd keys
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			acc := tree.NewAccessor()
			defer acc.Close()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			ks := make([]int64, 16)
			out := make([]bst.OpResult, 16)
			for {
				select {
				case <-stopNoise:
					return
				default:
				}
				for i := range ks {
					ks[i] = int64(2*rng.Intn(noiseKeys) + 1)
				}
				if rng.Intn(2) == 0 {
					acc.InsertBatch(ks, out)
				} else {
					acc.DeleteBatch(ks, out)
				}
			}
		}(w)
	}

	// Scan continuously while the deleter works. preAcked is captured
	// BEFORE the scan starts: only deletes acked before the pin are
	// asserted on; deletes racing the scan itself may land either way.
	preAcked := make([]bool, victims)
	for scans := 0; ; scans++ {
		select {
		case <-done:
			close(stopNoise)
			wg.Wait()
			// One final scan: every victim is now acked-deleted, so the
			// tree must contain no even key at all.
			tree.Scan(0, 2*victims, func(k int64) bool {
				if k%2 == 0 {
					t.Errorf("final scan: victim %d present after every delete acked", k)
				}
				return true
			})
			if err := tree.Validate(); err != nil {
				t.Fatalf("tree invalid after churn: %v", err)
			}
			if scans == 0 {
				t.Log("deleter finished before any mid-flight scan; final-scan check only")
			}
			return
		default:
		}
		for i := range preAcked {
			preAcked[i] = acked[i].Load()
		}
		tree.Scan(0, 2*victims, func(k int64) bool {
			if k%2 == 0 && preAcked[k/2] {
				t.Errorf("scan %d observed victim %d whose batched delete was acked before the scan's epoch pin", scans, k)
				return false
			}
			return true
		})
		if t.Failed() {
			<-done
			close(stopNoise)
			wg.Wait()
			return
		}
	}
}
