package bst

import "iter"

// All returns a Go 1.23 range-over-func iterator over the keys in
// ascending order. Like Ascend, it requires a quiescent tree for an exact
// snapshot.
//
//	for k := range s.All() { ... }
func (t *Tree) All() iter.Seq[int64] {
	return func(yield func(int64) bool) {
		t.Ascend(yield)
	}
}

// Range returns an iterator over keys in [from, to], ascending (quiescent).
func (t *Tree) Range(from, to int64) iter.Seq[int64] {
	return func(yield func(int64) bool) {
		t.AscendRange(from, to, yield)
	}
}

// All returns an iterator over (key, value) pairs in ascending key order
// (quiescent).
//
//	for k, v := range m.All() { ... }
func (m *Map[V]) All() iter.Seq2[int64, V] {
	return func(yield func(int64, V) bool) {
		m.Ascend(yield)
	}
}
