package bst_test

import (
	"testing"

	bst "repro"
)

func TestTreeAllIterator(t *testing.T) {
	s := bst.New()
	for _, k := range []int64{5, 1, 3} {
		s.Insert(k)
	}
	var got []int64
	for k := range s.All() {
		got = append(got, k)
	}
	want := []int64{1, 3, 5}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	// Early break must not panic or over-iterate.
	n := 0
	for range s.All() {
		n++
		break
	}
	if n != 1 {
		t.Fatalf("break iterated %d", n)
	}
}

func TestTreeRangeIterator(t *testing.T) {
	s := bst.New()
	for i := int64(0); i < 20; i++ {
		s.Insert(i)
	}
	var got []int64
	for k := range s.Range(5, 8) {
		got = append(got, k)
	}
	if len(got) != 4 || got[0] != 5 || got[3] != 8 {
		t.Fatalf("Range(5,8) = %v", got)
	}
}

func TestMapAllIterator(t *testing.T) {
	m := bst.NewMap[string]()
	m.Put(2, "b")
	m.Put(1, "a")
	var ks []int64
	var vs []string
	for k, v := range m.All() {
		ks = append(ks, k)
		vs = append(vs, v)
	}
	if len(ks) != 2 || ks[0] != 1 || vs[0] != "a" || ks[1] != 2 || vs[1] != "b" {
		t.Fatalf("All() = %v %v", ks, vs)
	}
}
