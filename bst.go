// Package bst (import path "repro") is a library of concurrent binary
// search trees reproducing "Fast Concurrent Lock-Free Binary Search Trees"
// by Natarajan and Mittal (PPoPP 2014).
//
// The default algorithm is the paper's contribution — a lock-free external
// BST that coordinates deletions by marking *edges* (flag and tag bits
// packed beside each child address) so that an insert commits with a
// single CAS and a delete with three atomic instructions. The baselines
// the paper evaluates against (Ellen et al., Howley–Jones, Bronson et al.)
// are included as selectable algorithms, all behind one interface.
//
// # Quick start
//
//	s := bst.New() // Natarajan–Mittal lock-free BST
//	s.Insert(42)
//	s.Contains(42) // true
//	s.Delete(42)   // true
//
// All Set methods are safe for arbitrary concurrent use. For hot loops,
// give each goroutine its own Accessor, which carries per-thread state
// (node allocator, reusable seek record) and avoids a pooled-handle hop:
//
//	a := s.NewAccessor()
//	for _, k := range batch { a.Insert(k) }
//
// Keys are int64. Values up to MaxKey are storable; the three largest
// mapped values are reserved for the paper's sentinel keys ∞₀ < ∞₁ < ∞₂
// and methods panic on keys above MaxKey.
package bst

import (
	"errors"
	"fmt"

	"repro/internal/bcco"
	"repro/internal/cgl"
	"repro/internal/core"
	"repro/internal/efrb"
	"repro/internal/forest"
	"repro/internal/hjbst"
	"repro/internal/keys"
	"repro/internal/kst"
	"repro/internal/metrics"
	"repro/internal/nmboxed"
	"repro/internal/orderstat"
)

// MaxKey is the largest storable key (the top of the int64 range is
// reserved for the algorithm's sentinel keys).
const MaxKey int64 = keys.MaxUser

// ErrCapacity is returned by TryInsert when a capacity-bounded tree
// (WithCapacity, NatarajanMittal algorithm) cannot allocate a node: the
// arena is exhausted and — if reclamation is enabled — bounded retries
// with epoch flushes recovered nothing. The tree stays fully usable:
// Contains and Delete keep working, and TryInsert succeeds again once
// deletes plus reclamation recycle slots.
var ErrCapacity = core.ErrCapacity

// ErrKeyOutOfRange is returned by TryInsert for keys above MaxKey (the
// panicking methods keep panicking, matching the map/slice convention for
// programmer errors; the Try path never panics).
var ErrKeyOutOfRange = errors.New("bst: key exceeds MaxKey")

// Algorithm selects a concurrent BST implementation.
type Algorithm int

const (
	// NatarajanMittal is the paper's lock-free external BST over a packed
	// node arena: child words carry the flag/tag bits next to a 32-bit
	// node index, so the paper's single-word CAS and BTS apply literally.
	// This is the default and the fastest under write-heavy contention.
	NatarajanMittal Algorithm = iota
	// NatarajanMittalBoxed is the same algorithm with each edge boxed as
	// an immutable {child, flag, tag} record behind an atomic pointer —
	// the GC-friendly encoding, with no arena capacity to size but extra
	// allocation on every mark.
	NatarajanMittalBoxed
	// EllenEtAl is the lock-free external BST of Ellen, Fatourou, Ruppert
	// and van Breugel (PODC 2010), which coordinates via node-level
	// flagging with Info records.
	EllenEtAl
	// HowleyJones is the lock-free internal BST of Howley and Jones
	// (SPAA 2012); faster searches on large sets, costlier deletes.
	HowleyJones
	// Bronson is the lock-based optimistic relaxed-balance AVL tree of
	// Bronson, Casper, Chafi and Olukotun (PPoPP 2010). The only balanced
	// tree in the set — best worst-case search paths.
	Bronson
	// CoarseLock is a single-RWMutex sequential BST: the baseline floor.
	CoarseLock
	// KAry is a lock-free k-ary external search tree — the paper's named
	// future-work direction (Section 6), with single-CAS leaf-replacement
	// updates. Fan-out defaults to 4; set it with WithArity. Empty-leaf
	// pruning is not implemented (the open problem the paper proposes to
	// solve with edge marking), so prefer NatarajanMittal for unbounded
	// fresh-key churn.
	KAry
)

func (a Algorithm) String() string {
	switch a {
	case NatarajanMittal:
		return "natarajan-mittal"
	case NatarajanMittalBoxed:
		return "natarajan-mittal-boxed"
	case EllenEtAl:
		return "ellen-et-al"
	case HowleyJones:
		return "howley-jones"
	case Bronson:
		return "bronson"
	case CoarseLock:
		return "coarse-lock"
	case KAry:
		return "k-ary"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Set is the concurrent dictionary interface.
type Set interface {
	// Insert adds key; it reports whether the set changed.
	Insert(key int64) bool
	// Delete removes key; it reports whether the set changed.
	Delete(key int64) bool
	// Contains reports whether key is present.
	Contains(key int64) bool
}

// Accessor is a single-goroutine fast path into a Tree. It must not be
// shared between goroutines.
type Accessor interface {
	Set
	// TryInsert adds key; it reports whether the set changed. Unlike
	// Insert it returns ErrKeyOutOfRange for keys above MaxKey and
	// ErrCapacity when a bounded tree cannot allocate, instead of
	// panicking.
	TryInsert(key int64) (bool, error)
	// ContainsBatch, InsertBatch and DeleteBatch apply one operation to
	// every key, filling out (len(out) must equal len(keys)) with per-op
	// results. On the default algorithm the batch shares one tree descent
	// across sorted keys, amortizing the per-operation seek; each
	// operation remains individually linearizable (a batch is neither
	// atomic nor a snapshot). Batched methods never panic on out-of-range
	// keys — the slot reports ErrKeyOutOfRange — and inserts report
	// ErrCapacity per-op, so a failure affects only its own slot. The
	// accessor reuses its batch buffers across calls: the steady-state
	// batch path does not allocate.
	ContainsBatch(keys []int64, out []OpResult)
	InsertBatch(keys []int64, out []OpResult)
	DeleteBatch(keys []int64, out []OpResult)
	// Close releases the accessor's per-goroutine resources — its epoch
	// slot (so a parked accessor can never again stall reclamation), its
	// reserved arena slots, and its metrics shard (folded into the tree's
	// registry so counts survive). After Close the accessor must not be
	// used. Close is a no-op for algorithms without per-accessor state;
	// long-lived services (see internal/server) should always pair
	// NewAccessor with Close on their drain path.
	Close() error
}

// backend is satisfied by every internal tree implementation.
type backend interface {
	Search(key uint64) bool
	Insert(key uint64) bool
	Delete(key uint64) bool
	Size() int
	Keys(yield func(uint64) bool)
	Audit() error
}

// rawAccessor is the per-goroutine view every implementation provides.
type rawAccessor interface {
	Search(key uint64) bool
	Insert(key uint64) bool
	Delete(key uint64) bool
}

type config struct {
	algo          Algorithm
	capacity      int
	reclaim       bool
	arity         int
	metrics       bool
	metricsSample int
	shards        int
	shardLo       int64
	shardHi       int64
	shardRange    bool
	orderstat     bool
}

// Option configures New.
type Option func(*config)

// WithAlgorithm selects the implementation (default NatarajanMittal).
func WithAlgorithm(a Algorithm) Option { return func(c *config) { c.algo = a } }

// WithCapacity bounds total node allocations for the arena-backed
// NatarajanMittal algorithm (ignored by the others). Without reclamation
// every insert permanently consumes two nodes; with WithReclamation the
// bound applies to live nodes plus a small recycling float.
func WithCapacity(nodes int) Option { return func(c *config) { c.capacity = nodes } }

// WithReclamation enables epoch-based memory reclamation for the
// arena-backed NatarajanMittal algorithm, recycling nodes spliced out of
// the tree once no concurrent operation can reference them. The paper
// benchmarks without reclamation; enable this for long-lived sets.
func WithReclamation() Option { return func(c *config) { c.reclaim = true } }

// WithArity sets the fan-out of the KAry algorithm (2–64, default 4);
// other algorithms ignore it.
func WithArity(k int) Option { return func(c *config) { c.arity = k } }

// Tree is a concurrent ordered set of int64 keys. All methods are safe for
// concurrent use unless noted.
type Tree struct {
	algo Algorithm
	b    backend

	// Order-statistics indexes (WithOrderStatistics, NatarajanMittal
	// only): ix serves a single core tree, agg merges a sharded forest's
	// per-shard indexes. Both nil when order statistics are off — every
	// aggregate method then answers ErrNoOrderStats.
	ix  *orderstat.Index
	agg *forest.Aggregates
}

// New creates a concurrent BST (Natarajan–Mittal unless overridden).
func New(opts ...Option) *Tree {
	cfg := config{algo: NatarajanMittal}
	for _, o := range opts {
		o(&cfg)
	}
	t := &Tree{algo: cfg.algo}
	switch cfg.algo {
	case NatarajanMittal:
		var reg *metrics.Registry
		if cfg.metrics {
			reg = metrics.NewRegistry(cfg.metricsSample)
		}
		if cfg.shards > 1 {
			f, err := newForest(cfg, reg)
			if err != nil {
				panic(fmt.Sprintf("bst: %v", err))
			}
			t.b = f
			if cfg.orderstat {
				agg, err := forest.NewAggregates(f)
				if err != nil {
					panic(fmt.Sprintf("bst: %v", err))
				}
				t.agg = agg
			}
		} else {
			ct := core.New(core.Config{Capacity: cfg.capacity, Reclaim: cfg.reclaim,
				Metrics: reg, TrackDirty: cfg.orderstat})
			t.b = ct
			if cfg.orderstat {
				ix, err := orderstat.New(ct)
				if err != nil {
					panic(fmt.Sprintf("bst: %v", err))
				}
				t.ix = ix
			}
		}
	case NatarajanMittalBoxed:
		t.b = nmboxed.New()
	case EllenEtAl:
		t.b = efrb.New()
	case HowleyJones:
		t.b = hjbst.New()
	case Bronson:
		t.b = bcco.New()
	case CoarseLock:
		t.b = cgl.New()
	case KAry:
		arity := cfg.arity
		if arity == 0 {
			arity = 4
		}
		t.b = kst.New(arity)
	default:
		panic(fmt.Sprintf("bst: unknown algorithm %v", cfg.algo))
	}
	return t
}

// Algorithm reports which implementation backs the tree.
func (t *Tree) Algorithm() Algorithm { return t.algo }

func mapKey(k int64) uint64 {
	if !keys.InRange(k) {
		panic(fmt.Sprintf("bst: key %d exceeds MaxKey (%d)", k, MaxKey))
	}
	return keys.Map(k)
}

func tryMapKey(k int64) (uint64, error) {
	if !keys.InRange(k) {
		return 0, fmt.Errorf("%w: %d > %d", ErrKeyOutOfRange, k, MaxKey)
	}
	return keys.Map(k), nil
}

// tryInserter is implemented by backends with a fallible allocation path.
type tryInserter interface {
	TryInsert(key uint64) (bool, error)
}

// Insert adds key; it reports whether the set changed.
func (t *Tree) Insert(key int64) bool { return t.b.Insert(mapKey(key)) }

// TryInsert adds key; it reports whether the set changed. It is the
// non-panicking variant of Insert: keys above MaxKey return
// ErrKeyOutOfRange, and on a capacity-bounded tree (WithCapacity with the
// NatarajanMittal algorithm) allocation failure returns ErrCapacity
// instead of panicking, leaving the tree fully usable. Algorithms without
// an allocation bound never return ErrCapacity.
func (t *Tree) TryInsert(key int64) (bool, error) {
	u, err := tryMapKey(key)
	if err != nil {
		return false, err
	}
	if ti, ok := t.b.(tryInserter); ok {
		return ti.TryInsert(u)
	}
	return t.b.Insert(u), nil
}

// Delete removes key; it reports whether the set changed.
func (t *Tree) Delete(key int64) bool { return t.b.Delete(mapKey(key)) }

// Contains reports whether key is present.
func (t *Tree) Contains(key int64) bool { return t.b.Search(mapKey(key)) }

// Len returns the number of keys. It requires a quiescent tree (no
// concurrent writers) to be exact.
func (t *Tree) Len() int { return t.b.Size() }

// Ascend visits keys in ascending order until yield returns false. It
// requires a quiescent tree for an exact snapshot.
func (t *Tree) Ascend(yield func(key int64) bool) {
	t.b.Keys(func(u uint64) bool { return yield(keys.Unmap(u)) })
}

// Min returns the smallest key, or ok=false when empty (quiescent).
func (t *Tree) Min() (key int64, ok bool) {
	t.Ascend(func(k int64) bool {
		key, ok = k, true
		return false
	})
	return key, ok
}

// Max returns the largest key, or ok=false when empty (quiescent; linear
// scan — the concurrent structures do not maintain parent pointers for a
// cheap descent).
func (t *Tree) Max() (key int64, ok bool) {
	t.Ascend(func(k int64) bool {
		key, ok = k, true
		return true
	})
	return key, ok
}

// AscendRange visits keys in [from, to] in ascending order (quiescent).
func (t *Tree) AscendRange(from, to int64, yield func(key int64) bool) {
	t.Ascend(func(k int64) bool {
		if k < from {
			return true
		}
		if k > to {
			return false
		}
		return yield(k)
	})
}

// Scan visits keys in [from, to] in ascending order until yield returns
// false, and unlike AscendRange it is safe to run concurrently with
// writers. For the default arena-backed algorithm the traversal holds an
// epoch pin, so reclamation can never recycle a node mid-scan; for the
// GC-reclaimed algorithms the garbage collector provides the same safety.
//
// The scan is weakly consistent, like a concurrent-map iterator: keys
// present throughout are visited exactly once, keys inserted or deleted
// concurrently may or may not appear, and the result is not a linearizable
// snapshot. Bounds outside the storable key range are clamped. This is the
// traversal the network server uses for range queries.
func (t *Tree) Scan(from, to int64, yield func(key int64) bool) {
	if to > MaxKey {
		to = MaxKey
	}
	if from > to {
		return
	}
	switch b := t.b.(type) {
	case *core.Tree:
		b.Range(mapKey(from), mapKey(to), func(u uint64) bool {
			return yield(keys.Unmap(u))
		})
		return
	case *forest.Forest:
		// One epoch pin per shard; the merged stream is sorted because the
		// shards cover disjoint ascending ranges.
		b.Range(mapKey(from), mapKey(to), func(u uint64) bool {
			return yield(keys.Unmap(u))
		})
		return
	}
	// GC-backed algorithms: the quiescent walk is memory-safe under
	// concurrency (no manual reclamation), with the same weak consistency.
	t.AscendRange(from, to, yield)
}

// Validate checks the backing structure's invariants (quiescent);
// primarily for tests and debugging.
func (t *Tree) Validate() error { return t.b.Audit() }

// Health is a point-in-time capacity and reclamation report. Counter
// fields are monotonic totals; gauge fields (stalled slots, backlog) are
// instantaneous and may be stale by the time they are read. For
// algorithms other than NatarajanMittal only Algorithm is meaningful.
type Health struct {
	// Algorithm backs the tree.
	Algorithm Algorithm
	// Capacity is the configured node bound (0 = unbounded growth).
	Capacity int
	// NodesAllocated counts arena slots handed out since creation;
	// NodesRecycled counts slots returned for reuse. Live consumption is
	// bounded by Allocated - Recycled.
	NodesAllocated uint64
	NodesRecycled  uint64
	// ReclaimEnabled reports whether epoch-based reclamation is on. The
	// fields below are zero when it is off.
	ReclaimEnabled bool
	// Epoch is the global reclamation epoch; EpochSlots and PinnedSlots
	// count registered and currently pinned reader slots.
	Epoch       uint64
	EpochSlots  int
	PinnedSlots int
	// StalledSlots counts pinned slots lagging the global epoch — each
	// one freezes reclamation until its goroutine unpins. MaxEpochLag is
	// the worst lag observed (at most 1 under this protocol).
	StalledSlots int
	MaxEpochLag  uint64
	// RetiredBacklog counts nodes retired but not yet recycled.
	RetiredBacklog int
}

// Health reports capacity and reclamation diagnostics. It is safe to call
// concurrently with operations and is primarily useful for detecting a
// tree near its capacity bound or a stalled reader blocking reclamation.
func (t *Tree) Health() Health {
	h := Health{Algorithm: t.algo}
	var ch core.Health
	switch b := t.b.(type) {
	case *core.Tree:
		ch = b.Health()
	case *forest.Forest:
		ch = b.Health()
	default:
		return h
	}
	h.Capacity = ch.Capacity
	h.NodesAllocated = ch.Allocated
	h.NodesRecycled = ch.Recycled
	h.ReclaimEnabled = ch.Reclaim
	h.Epoch = ch.Epoch
	h.EpochSlots = ch.Slots
	h.PinnedSlots = ch.Pinned
	h.StalledSlots = ch.Stalled
	h.MaxEpochLag = ch.MaxEpochLag
	h.RetiredBacklog = ch.RetiredBacklog
	return h
}

// Stats is an alias-level summary of Health's counter fields, kept
// separate so hot monitoring paths can avoid the full report.
type Stats struct {
	NodesAllocated uint64
	NodesRecycled  uint64
	RetiredBacklog int
}

// Stats reports allocation counters (see Health for the full report).
func (t *Tree) Stats() Stats {
	h := t.Health()
	return Stats{
		NodesAllocated: h.NodesAllocated,
		NodesRecycled:  h.NodesRecycled,
		RetiredBacklog: h.RetiredBacklog,
	}
}

// Close retires the tree's reclamation domain: every remaining epoch slot
// (including those of pooled handles backing the convenience methods) is
// closed so no slot can ever again pin an epoch, and retired nodes whose
// grace period allows it are recycled. Call it when the tree is quiescent —
// typically on a server's drain path, after all accessors are Closed and no
// operation is in flight. After Close the tree must not be used. Close is
// idempotent and a no-op for algorithms without reclamation state.
func (t *Tree) Close() error {
	if t.ix != nil {
		t.ix.Close()
	}
	if t.agg != nil {
		t.agg.Close()
	}
	switch b := t.b.(type) {
	case *core.Tree:
		b.Close()
	case *forest.Forest:
		b.Close()
	}
	return nil
}

// NewAccessor returns a per-goroutine fast path. The accessor must not be
// shared between goroutines; the Tree itself remains safe for shared use.
func (t *Tree) NewAccessor() Accessor {
	switch b := t.b.(type) {
	case *core.Tree:
		return &accessor{r: b.NewHandle()}
	case *forest.Forest:
		return &accessor{r: b.NewHandle()}
	case *nmboxed.Tree:
		return &accessor{r: b.NewHandle()}
	case *efrb.Tree:
		return &accessor{r: b.NewHandle()}
	case *hjbst.Tree:
		return &accessor{r: b.NewHandle()}
	case *bcco.Tree:
		return &accessor{r: b.NewHandle()}
	case *kst.Tree:
		return &accessor{r: b.NewHandle()}
	default: // coarse lock: the tree is its own accessor
		return &accessor{r: t.b}
	}
}

// accessor carries, besides the backend's per-goroutine view, the batch
// scratch buffers (batch.go) — which is why accessors are pointers: batch
// calls grow the scratch in place so steady state never allocates.
type accessor struct {
	r  rawAccessor
	sc batchScratch
}

func (a *accessor) Insert(key int64) bool   { return a.r.Insert(mapKey(key)) }
func (a *accessor) Delete(key int64) bool   { return a.r.Delete(mapKey(key)) }
func (a *accessor) Contains(key int64) bool { return a.r.Search(mapKey(key)) }

func (a *accessor) TryInsert(key int64) (bool, error) {
	u, err := tryMapKey(key)
	if err != nil {
		return false, err
	}
	if ti, ok := a.r.(tryInserter); ok {
		return ti.TryInsert(u)
	}
	return a.r.Insert(u), nil
}

func (a *accessor) Close() error {
	if c, ok := a.r.(interface{ Close() }); ok {
		c.Close()
	}
	return nil
}

// Algorithms lists all selectable implementations.
func Algorithms() []Algorithm {
	return []Algorithm{NatarajanMittal, NatarajanMittalBoxed, EllenEtAl, HowleyJones, Bronson, CoarseLock, KAry}
}
