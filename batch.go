package bst

import (
	"fmt"

	"repro/internal/keys"
)

// OpResult is the outcome of one operation inside a batched call. OK
// reports what the operation's single-key form would have returned
// (set changed for Insert/Delete, key present for Contains); Err is nil,
// ErrKeyOutOfRange, or — for inserts on a capacity-bounded tree —
// ErrCapacity. A non-nil Err implies OK == false.
type OpResult struct {
	OK  bool
	Err error
}

// Batched operations amortize per-operation overheads — epoch entry and,
// on the default algorithm, the root-to-leaf descent — across many keys:
// the core sorts the batch and walks all keys down the tree together, so
// shared path prefixes are traversed once and the independent tails
// overlap their cache misses. Each operation in a batch is individually
// linearizable, in an order consistent with real time within the batch's
// invocation window; a batch is NOT atomic and is not a snapshot. A
// failed operation (capacity, out-of-range key) affects only its own
// slot — the rest of the batch still executes.
//
// Unlike the single-key methods, batched methods never panic on keys
// above MaxKey: the offending slot reports ErrKeyOutOfRange and the
// remaining keys proceed. (A batch usually carries remote callers'
// keys — the server executes whole frames through this path — so a bad
// key must be a per-op status, not a crash.)

// batchKind selects the operation a batch applies to every key.
type batchKind uint8

const (
	lookupKind batchKind = iota
	insertKind
	deleteKind
)

// batcher is implemented by backends with native batched operations
// (the arena-backed core, via both its pooled-handle Tree methods and
// per-goroutine Handles).
type batcher interface {
	LookupBatch(ks []uint64, out []bool)
	InsertBatch(ks []uint64, out []bool, errs []error)
	DeleteBatch(ks []uint64, out []bool)
}

// batchScratch holds the reusable buffers a batched call needs to bridge
// the public int64 API to the core's uint64 key space: the mapped keys,
// their original positions (identity unless some keys were out of range),
// and the core's result slices. Accessors keep one per instance so their
// steady-state batch path does not allocate; the Tree convenience methods
// build one per call.
type batchScratch struct {
	uks  []uint64
	pos  []int32
	oks  []bool
	errs []error
}

func (sc *batchScratch) grow(n int) {
	if cap(sc.oks) < n {
		sc.oks = make([]bool, n)
		sc.errs = make([]error, n)
	}
}

// run executes one batch against a native batching backend.
func (sc *batchScratch) run(b batcher, kind batchKind, in []int64, out []OpResult) {
	if len(out) != len(in) {
		panic("bst: batch result length mismatch")
	}
	uks := sc.uks[:0]
	pos := sc.pos[:0]
	for i, k := range in {
		if !keys.InRange(k) {
			out[i] = OpResult{Err: fmt.Errorf("%w: %d > %d", ErrKeyOutOfRange, k, MaxKey)}
			continue
		}
		uks = append(uks, keys.Map(k))
		pos = append(pos, int32(i))
	}
	sc.uks, sc.pos = uks, pos
	m := len(uks)
	if m == 0 {
		return
	}
	sc.grow(m)
	oks := sc.oks[:m]
	switch kind {
	case lookupKind:
		b.LookupBatch(uks, oks)
		for j, p := range pos {
			out[p] = OpResult{OK: oks[j]}
		}
	case insertKind:
		errs := sc.errs[:m]
		b.InsertBatch(uks, oks, errs)
		for j, p := range pos {
			out[p] = OpResult{OK: oks[j], Err: errs[j]}
		}
	case deleteKind:
		b.DeleteBatch(uks, oks)
		for j, p := range pos {
			out[p] = OpResult{OK: oks[j]}
		}
	}
}

// runBatchSlow is the fallback for backends without native batching: the
// same per-op semantics, one single-key operation at a time.
func runBatchSlow(r rawAccessor, kind batchKind, in []int64, out []OpResult) {
	if len(out) != len(in) {
		panic("bst: batch result length mismatch")
	}
	ti, _ := r.(tryInserter)
	for i, k := range in {
		if !keys.InRange(k) {
			out[i] = OpResult{Err: fmt.Errorf("%w: %d > %d", ErrKeyOutOfRange, k, MaxKey)}
			continue
		}
		u := keys.Map(k)
		switch kind {
		case lookupKind:
			out[i] = OpResult{OK: r.Search(u)}
		case insertKind:
			if ti != nil {
				ok, err := ti.TryInsert(u)
				out[i] = OpResult{OK: ok, Err: err}
			} else {
				out[i] = OpResult{OK: r.Insert(u)}
			}
		case deleteKind:
			out[i] = OpResult{OK: r.Delete(u)}
		}
	}
}

// ContainsBatch reports, in out[i], whether keys[i] is present. See the
// batching contract above: per-op linearizability, no snapshot semantics,
// out-of-range keys report ErrKeyOutOfRange. len(out) must equal
// len(keys). Hot paths should prefer Accessor.ContainsBatch, which reuses
// its buffers across calls.
func (t *Tree) ContainsBatch(keys []int64, out []OpResult) {
	if b, ok := t.b.(batcher); ok {
		var sc batchScratch
		sc.run(b, lookupKind, keys, out)
		return
	}
	runBatchSlow(t.b, lookupKind, keys, out)
}

// InsertBatch inserts every key with TryInsert semantics: out[i].OK
// reports whether the set changed, out[i].Err is nil, ErrKeyOutOfRange,
// or ErrCapacity. A failed slot does not abort the batch. len(out) must
// equal len(keys).
func (t *Tree) InsertBatch(keys []int64, out []OpResult) {
	if b, ok := t.b.(batcher); ok {
		var sc batchScratch
		sc.run(b, insertKind, keys, out)
		return
	}
	runBatchSlow(t.b, insertKind, keys, out)
}

// DeleteBatch deletes every key; out[i].OK reports whether the set
// changed. len(out) must equal len(keys).
func (t *Tree) DeleteBatch(keys []int64, out []OpResult) {
	if b, ok := t.b.(batcher); ok {
		var sc batchScratch
		sc.run(b, deleteKind, keys, out)
		return
	}
	runBatchSlow(t.b, deleteKind, keys, out)
}

func (a *accessor) ContainsBatch(keys []int64, out []OpResult) {
	if b, ok := a.r.(batcher); ok {
		a.sc.run(b, lookupKind, keys, out)
		return
	}
	runBatchSlow(a.r, lookupKind, keys, out)
}

func (a *accessor) InsertBatch(keys []int64, out []OpResult) {
	if b, ok := a.r.(batcher); ok {
		a.sc.run(b, insertKind, keys, out)
		return
	}
	runBatchSlow(a.r, insertKind, keys, out)
}

func (a *accessor) DeleteBatch(keys []int64, out []OpResult) {
	if b, ok := a.r.(batcher); ok {
		a.sc.run(b, deleteKind, keys, out)
		return
	}
	runBatchSlow(a.r, deleteKind, keys, out)
}
