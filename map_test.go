package bst_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	bst "repro"
)

func TestMapBasics(t *testing.T) {
	m := bst.NewMap[string]()
	if _, ok := m.Get(1); ok {
		t.Fatal("empty map returned a value")
	}
	if m.Put(1, "one") {
		t.Fatal("first Put claimed replacement")
	}
	if v, ok := m.Get(1); !ok || v != "one" {
		t.Fatalf("Get = %q, %v", v, ok)
	}
	if !m.Put(1, "uno") {
		t.Fatal("second Put did not claim replacement")
	}
	if v, _ := m.Get(1); v != "uno" {
		t.Fatalf("value not replaced: %q", v)
	}
	if m.PutIfAbsent(1, "ein") {
		t.Fatal("PutIfAbsent overwrote")
	}
	if v, _ := m.Get(1); v != "uno" {
		t.Fatal("PutIfAbsent changed the value")
	}
	if !m.Delete(1) || m.Contains(1) {
		t.Fatal("delete failed")
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMapAscendWithValues(t *testing.T) {
	m := bst.NewMap[string]()
	for _, k := range []int64{3, 1, 2} {
		m.Put(k, fmt.Sprintf("v%d", k))
	}
	var got []string
	m.Ascend(func(k int64, v string) bool {
		got = append(got, fmt.Sprintf("%d=%s", k, v))
		return true
	})
	want := []string{"1=v1", "2=v2", "3=v3"}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestMapModelEquivalence(t *testing.T) {
	m := bst.NewMap[int]()
	model := map[int64]int{}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 30000; i++ {
		k := int64(rng.Intn(500))
		switch rng.Intn(4) {
		case 0:
			v := rng.Int()
			_, had := model[k]
			if got := m.Put(k, v); got != had {
				t.Fatalf("op %d: Put(%d) replaced=%v, want %v", i, k, got, had)
			}
			model[k] = v
		case 1:
			v := rng.Int()
			_, had := model[k]
			if got := m.PutIfAbsent(k, v); got == had {
				t.Fatalf("op %d: PutIfAbsent(%d) = %v with had=%v", i, k, got, had)
			}
			if !had {
				model[k] = v
			}
		case 2:
			_, had := model[k]
			if got := m.Delete(k); got != had {
				t.Fatalf("op %d: Delete(%d) = %v, want %v", i, k, got, had)
			}
			delete(model, k)
		default:
			wantV, had := model[k]
			gotV, ok := m.Get(k)
			if ok != had || (ok && gotV != wantV) {
				t.Fatalf("op %d: Get(%d) = (%v,%v), want (%v,%v)", i, k, gotV, ok, wantV, had)
			}
		}
	}
	if m.Len() != len(model) {
		t.Fatalf("Len = %d, model %d", m.Len(), len(model))
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestMapConcurrentUpserts races writers on one key: the final value must
// be the last linearized Put, i.e. *some* written value, and every Get
// must observe either absence or a value some writer actually wrote.
func TestMapConcurrentUpserts(t *testing.T) {
	m := bst.NewMap[int64]()
	const workers = 8
	const opsEach = 5000
	valid := func(v int64) bool { return v >= 0 && v < workers*opsEach }
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < opsEach; i++ {
				v := int64(w*opsEach + i)
				switch i % 4 {
				case 0, 1:
					m.Put(7, v)
				case 2:
					if got, ok := m.Get(7); ok && !valid(got) {
						t.Errorf("Get observed impossible value %d", got)
						return
					}
				default:
					m.Delete(7)
				}
			}
		}(w)
	}
	wg.Wait()
	if v, ok := m.Get(7); ok && !valid(v) {
		t.Fatalf("final value %d was never written", v)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestMapValueVisibility: a reader that finds a key must see the value
// published with it, never a zero/partial value (the value is written
// before the leaf-linking CAS).
func TestMapValueVisibility(t *testing.T) {
	m := bst.NewMap[[2]int64]()
	stop := make(chan struct{})
	var writerWg, readerWg sync.WaitGroup
	writerWg.Add(1)
	go func() {
		defer writerWg.Done()
		i := int64(1)
		for {
			select {
			case <-stop:
				return
			default:
			}
			k := i % 64
			m.Put(k, [2]int64{i, i}) // both halves must always match
			m.Delete(k)
			i++
		}
	}()
	for r := 0; r < 2; r++ {
		readerWg.Add(1)
		go func(seed int64) {
			defer readerWg.Done()
			rng := rand.New(rand.NewSource(seed))
			for n := 0; n < 30000; n++ {
				if v, ok := m.Get(int64(rng.Intn(64))); ok {
					if v[0] != v[1] || v[0] == 0 {
						t.Errorf("torn or zero value observed: %v", v)
						return
					}
				}
			}
		}(int64(r) + 5)
	}
	readerWg.Wait()
	close(stop)
	writerWg.Wait()
}
