// contention: a window into the algorithm's machinery under adversarial
// contention.
//
// Many goroutines fight over a tiny key range — the paper's
// highest-contention configuration — while instrumented handles expose
// what the algorithm actually does: how often CAS fails, how often an
// operation helps a conflicting delete finish (Section 3.2.4), how many
// physical removals succeed, and how many logically deleted leaves each
// successful splice prunes in one step (the multi-leaf removal of
// Figure 2 / Section 5).
//
// This example deliberately uses internal packages: the instrumentation
// counters are not part of the public API.
package main

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/keys"
	"repro/internal/stats"
	"repro/internal/workload"
)

const (
	workers  = 16
	keySpace = 32 // brutal: every operation lands near every other
	opsEach  = 200_000
)

func main() {
	tree := core.New(core.Config{Capacity: 1 << 24, CountPrunedLeaves: true})

	handles := make([]*core.Handle, workers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		handles[w] = tree.NewHandle()
		wg.Add(1)
		go func(h *core.Handle, seed uint64) {
			defer wg.Done()
			gen := workload.NewGenerator(workload.WriteDominated, keySpace, seed)
			for i := 0; i < opsEach; i++ {
				op, k := gen.Next()
				u := keys.Map(k)
				switch op {
				case workload.OpInsert:
					h.Insert(u)
				default:
					h.Delete(u)
				}
			}
		}(handles[w], uint64(w)+1)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var total core.Stats
	for _, h := range handles {
		total.Add(h.Stats)
	}

	ops := total.Inserts + total.Deletes
	fmt.Printf("%d workers × %d ops over %d keys (write-dominated) in %v — %s ops/s\n\n",
		workers, opsEach, keySpace, elapsed.Round(time.Millisecond),
		stats.HumanCount(float64(ops)/elapsed.Seconds()))

	tbl := stats.NewTable("metric", "count", "per op")
	add := func(name string, v uint64) {
		tbl.AddRow(name, v, float64(v)/float64(ops))
	}
	add("operations", ops)
	add("seek phases", total.Seeks)
	add("CAS succeeded", total.CASSucceeded)
	add("CAS failed (contention)", total.CASFailed)
	add("BTS (sibling tags)", total.BTS)
	add("helped a conflicting delete", total.HelpAttempts)
	add("successful splices", total.SpliceWins)
	add("leaves pruned by splices", total.PrunedLeaves)
	add("nodes allocated", total.NodesAlloc)
	fmt.Print(tbl.String())

	if total.SpliceWins > 0 {
		fmt.Printf("\nmulti-leaf pruning: %.3f leaves removed per successful splice\n",
			float64(total.PrunedLeaves)/float64(total.SpliceWins))
		fmt.Println("(> 1.0 means single CASes physically removed several logically-deleted")
		fmt.Println(" leaves at once — the chained-deletion effect of Figure 2)")
	}

	if err := tree.Audit(); err != nil {
		fmt.Println("AUDIT FAILED:", err)
		return
	}
	fmt.Printf("\ntree audit passed; final size %d\n", tree.Size())
}
