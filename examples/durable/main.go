// Command durable demonstrates the crash-consistency contract of
// durable.Tree: every acknowledged mutation is on disk before the call
// returns (-sync fsync semantics), so a hard crash — simulated here with
// Crash(), which drops the process's state without a final fsync or
// checkpoint — loses nothing that was acked. The run writes, checkpoints,
// writes a WAL tail past the checkpoint, crashes, recovers, and audits.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/durable"
	"repro/internal/wal"
)

func main() {
	dir, err := os.MkdirTemp("", "bst-durable-example-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// 1. Write. Insert/Delete return only after the WAL record is
	// fsynced — the ack IS the durability guarantee.
	d, err := durable.Open(dir, durable.Options{Sync: wal.SyncFsync})
	if err != nil {
		log.Fatal(err)
	}
	for k := int64(1); k <= 100; k++ {
		d.Insert(k)
	}
	d.Delete(50)
	fmt.Printf("wrote 100 inserts + 1 delete (Len=%d), every ack fsynced\n", d.Len())

	// 2. Checkpoint: an epoch-pinned snapshot bounds future recovery —
	// the WAL before its horizon is garbage-collected.
	ck, err := d.Checkpoint()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpoint: %d keys at WAL seq %d (%d bytes, %d old segments GC'd)\n",
		ck.Keys, ck.WALSeq, ck.Bytes, ck.SegmentsGC)

	// 3. A tail past the checkpoint, living only in the WAL.
	for k := int64(101); k <= 120; k++ {
		d.Insert(k)
	}

	// 4. Crash: no final fsync, no shutdown checkpoint. (A real kill -9
	// is exercised by `bststress -crash`; Crash() is the in-process
	// equivalent.)
	if err := d.Crash(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("crashed without a clean shutdown")

	// 5. Recover: newest valid snapshot bulk-loaded, then the WAL tail
	// replayed over it.
	d2, err := durable.Open(dir, durable.Options{Sync: wal.SyncFsync})
	if err != nil {
		log.Fatal(err)
	}
	defer d2.Close()
	rs := d2.RecoveryStats()
	fmt.Printf("recovered in %v: %d snapshot keys + %d WAL ops replayed\n",
		rs.Duration.Round(0), rs.SnapshotKeys, rs.ReplayedOps)

	for k := int64(1); k <= 120; k++ {
		want := k != 50
		if d2.Contains(k) != want {
			log.Fatalf("key %d: present=%v after recovery, want %v", k, !want, want)
		}
	}
	fmt.Println("audit: all 119 acked keys present, the deleted key stayed deleted")
}
