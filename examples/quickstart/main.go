// Quickstart: a tour of the public API — constructing trees, the basic
// set operations, per-goroutine accessors for hot paths, ordered
// iteration, and switching between the paper's algorithms.
package main

import (
	"fmt"
	"sync"

	bst "repro"
)

func main() {
	// Default: the paper's lock-free Natarajan–Mittal tree.
	s := bst.New()

	// Basic operations. Every method is safe for concurrent use.
	fmt.Println("insert 42:", s.Insert(42)) // true — the set changed
	fmt.Println("insert 42:", s.Insert(42)) // false — duplicate
	fmt.Println("contains 42:", s.Contains(42))
	fmt.Println("delete 42:", s.Delete(42))
	fmt.Println("contains 42:", s.Contains(42))

	// Hot loops: give each goroutine its own Accessor. It carries the
	// per-thread seek record and node allocator the paper describes, so
	// operations don't touch shared setup state.
	//
	// Note the scrambled keys: an *unbalanced* BST (this algorithm, like
	// the paper's) degrades to O(n) paths on sorted input. scramble is a
	// bijection, so 40k distinct ids stay 40k distinct keys, now spread
	// uniformly. For inherently sorted keys (timestamps, sequence
	// numbers), pick the balanced Bronson algorithm instead — see the
	// orderindex example.
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			a := s.NewAccessor()
			for i := 0; i < 10_000; i++ {
				a.Insert(scramble(int64(w*10_000 + i)))
			}
		}(w)
	}
	wg.Wait()
	fmt.Println("len after concurrent load:", s.Len())

	// Ordered iteration (quiescent).
	sum := 0
	s.Ascend(func(k int64) bool { sum++; return sum < 5 })
	min, _ := s.Min()
	max, _ := s.Max()
	fmt.Printf("min=%d max=%d\n", min, max)

	// Range queries over a small sequential set.
	ranged := bst.New()
	for i := int64(0); i < 1000; i++ {
		ranged.Insert(i)
	}
	count := 0
	ranged.AscendRange(100, 199, func(int64) bool { count++; return true })
	fmt.Println("keys in [100,199]:", count)

	// The paper's baselines are one option away — same interface.
	for _, algo := range bst.Algorithms() {
		t := bst.New(bst.WithAlgorithm(algo))
		t.Insert(7)
		fmt.Printf("%-24s contains(7)=%v\n", algo, t.Contains(7))
	}

	// Long-lived sets under churn: enable epoch-based reclamation so
	// deleted nodes are recycled (the paper defers this to future work).
	lived := bst.New(bst.WithReclamation(), bst.WithCapacity(1<<20))
	a := lived.NewAccessor()
	for i := 0; i < 1_000_000; i++ {
		k := int64(i % 1000)
		a.Insert(k)
		a.Delete(k)
	}
	fmt.Println("churned 1M ops through a 2^20-node arena: len =", lived.Len())
}

// scramble maps ids to well-spread keys. Multiplying by an odd constant is
// a bijection on 64-bit integers, so distinct ids stay distinct.
func scramble(id int64) int64 {
	k := int64(uint64(id) * 0x9E3779B97F4A7C15)
	if k > bst.MaxKey { // the three reserved sentinel values
		k -= 4
	}
	return k
}
