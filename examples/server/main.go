// Command server demonstrates the full serving robustness stack in one
// process: a bstserve server fronting a deliberately tiny arena, and a
// retrying client whose backoff rides out arena exhaustion over the wire.
//
// The client fills the tree until the server answers with a capacity
// status (which surfaces as bst.ErrCapacity — the same sentinel as the
// in-process API), a "janitor" frees keys as a real workload's deletes
// would, and the client's capacity backoff converges: the insert that was
// repeatedly refused eventually lands. The server then drains gracefully
// and the reclamation domain closes.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	bst "repro"
	"repro/internal/client"
	"repro/internal/server"
)

func main() {
	// A 256-node arena with reclamation: small enough to exhaust in
	// milliseconds, recoverable because deletes recycle nodes.
	tree := bst.New(bst.WithCapacity(256), bst.WithReclamation())
	srv := server.New(server.Config{Tree: tree})
	if err := srv.Start("127.0.0.1:0"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("serving on", srv.Addr())

	cl, err := client.Dial(client.Config{Addr: srv.Addr().String(), Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()

	// Fill over the wire until the server pushes back. A one-attempt
	// client shows the raw error; note it is the *in-process* sentinel.
	oneShot, err := client.Dial(client.Config{Addr: srv.Addr().String(), MaxAttempts: 1, Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer oneShot.Close()
	var live []int64
	for k := int64(0); ; k++ {
		ok, err := oneShot.Insert(ctx, k)
		if errors.Is(err, bst.ErrCapacity) {
			fmt.Printf("arena full after %d keys: %v\n", len(live), err)
			break
		}
		if err != nil || !ok {
			log.Fatalf("Insert(%d) = (%v, %v)", k, ok, err)
		}
		live = append(live, k)
	}

	// A janitor frees keys shortly — while the retrying client is already
	// hammering an insert that cannot yet succeed. Its capacity backoff
	// (longer than the shed backoff: space returns on reclamation
	// timescales) keeps it from busy-spinning until the frees land.
	go func() {
		time.Sleep(50 * time.Millisecond)
		for _, k := range live[:len(live)/2] {
			if ok, err := cl.Delete(context.Background(), k); err != nil || !ok {
				log.Fatalf("janitor Delete(%d) = (%v, %v)", k, ok, err)
			}
		}
		fmt.Printf("janitor freed %d keys\n", len(live)/2)
	}()

	ictx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	start := time.Now()
	ok, err := cl.Insert(ictx, 1<<40)
	if err != nil || !ok {
		log.Fatalf("recovering insert = (%v, %v)", ok, err)
	}
	st := cl.Stats()
	fmt.Printf("insert converged after %v (%d retries, %d capacity refusals seen)\n",
		time.Since(start).Round(time.Millisecond), st.Retries, st.CapacityErrs)

	// Graceful drain, then close the reclamation domain.
	dctx, cancel2 := context.WithTimeout(ctx, 10*time.Second)
	defer cancel2()
	if err := srv.Shutdown(dctx); err != nil {
		log.Fatal(err)
	}
	if err := tree.Close(); err != nil {
		log.Fatal(err)
	}
	c := srv.Counters()
	fmt.Printf("drained: %d requests served, %d capacity errors on the wire, %d conns\n",
		c.Requests, c.CapacityErrs, c.ConnsAccepted)
	if err := tree.Validate(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("tree valid after exhaustion, recovery and drain")
}
