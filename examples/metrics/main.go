// Command metrics demonstrates live contention telemetry: a tree built
// with WithMetrics, a churning workload, delta snapshots via Metrics.Sub,
// and a self-scrape of the Prometheus endpoint started by ServeMetrics.
package main

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	bst "repro"
)

func main() {
	tr := bst.New(
		bst.WithCapacity(1<<20),
		bst.WithReclamation(),
		bst.WithMetrics(1), // time every operation (demo; default samples 1/64)
	)

	srv, err := bst.ServeMetrics("127.0.0.1:0", map[string]*bst.Tree{"demo": tr})
	if err != nil {
		panic(err)
	}
	defer srv.Close()
	fmt.Printf("serving http://%s/metrics and /debug/vars\n\n", srv.Addr())

	// Churn: a few goroutines hammering a small key range so the
	// contention counters have something to say.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			ac := tr.NewAccessor()
			for i := int64(0); ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := (seed*7919 + i) % 512
				ac.Insert(k)
				ac.Contains(k)
				ac.Delete(k)
			}
		}(int64(w))
	}

	before := tr.Metrics()
	time.Sleep(300 * time.Millisecond)
	delta := tr.Metrics().Sub(before)
	close(stop)
	wg.Wait()

	fmt.Println("300ms of churn, deltas:")
	names := make([]string, 0, len(delta.Counters))
	for k, v := range delta.Counters {
		if v > 0 {
			names = append(names, k)
		}
	}
	sort.Strings(names)
	for _, k := range names {
		fmt.Printf("  %-28s %d\n", k, delta.Counters[k])
	}
	if l := delta.Latency["insert"]; l.Count > 0 {
		fmt.Printf("insert latency: %d sampled, p50 ≤ %dns, p99 ≤ %dns\n",
			l.Count, l.P50Nanos, l.P99Nanos)
	}

	// Scrape ourselves the way Prometheus would.
	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		panic(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	fmt.Println("\nscrape sample:")
	for _, line := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(line, "bst_ops_total") ||
			strings.HasPrefix(line, "bst_arena_allocated_nodes") {
			fmt.Println("  " + line)
		}
	}
}
