// dedup: parallel stream deduplication — the write-dominated workload the
// paper's evaluation stresses (0% search, 50% insert, 50% delete maps onto
// membership structures that are written on every event).
//
// Scenario: several shards of a log pipeline emit events; duplicate event
// IDs appear across shards (retries, at-least-once delivery). Workers call
// Insert on a shared concurrent set — Insert's boolean answer *is* the
// dedup decision, atomically, with no separate check-then-act race. A
// trailing eviction stage deletes IDs once their retry horizon passes,
// keeping the set bounded.
package main

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	bst "repro"
	"repro/internal/workload"
)

const (
	shards        = 8
	eventsPerShrd = 100_000
	uniqueIDs     = 300_000 // duplicates guaranteed: 800k events over 300k IDs
	evictAfter    = 200_000 // evict IDs this many global events later
)

func main() {
	seen := bst.New(bst.WithReclamation(), bst.WithCapacity(1<<22))

	var accepted, duplicates, evicted atomic.Int64
	var globalSeq atomic.Int64
	evictQueue := make(chan int64, 1<<16)

	var shardWg, evictWg sync.WaitGroup
	start := time.Now()

	// Shard workers: deduplicate their event streams.
	for s := 0; s < shards; s++ {
		shardWg.Add(1)
		go func(shard int) {
			defer shardWg.Done()
			a := seen.NewAccessor()
			rng := workload.NewSplitMix64(uint64(shard) + 1)
			for i := 0; i < eventsPerShrd; i++ {
				id := int64(rng.Next() % uniqueIDs)
				globalSeq.Add(1)
				if a.Insert(id) {
					accepted.Add(1)
					select {
					case evictQueue <- id: // schedule horizon eviction
					default: // queue full: skip eviction for this ID
					}
				} else {
					duplicates.Add(1)
				}
			}
		}(s)
	}

	// Eviction worker: deletes IDs after the retry horizon, so the set
	// tracks the recent window rather than growing forever.
	stop := make(chan struct{})
	evictWg.Add(1)
	go func() {
		defer evictWg.Done()
		a := seen.NewAccessor()
		type pending struct {
			id  int64
			seq int64
		}
		var backlog []pending
		for {
			select {
			case id := <-evictQueue:
				backlog = append(backlog, pending{id, globalSeq.Load()})
			case <-stop:
				return
			}
			for len(backlog) > 0 && globalSeq.Load()-backlog[0].seq > evictAfter {
				if a.Delete(backlog[0].id) {
					evicted.Add(1)
				}
				backlog = backlog[1:]
			}
		}
	}()

	shardWg.Wait()
	close(stop)
	evictWg.Wait()
	elapsed := time.Since(start)

	total := accepted.Load() + duplicates.Load()
	fmt.Printf("processed %d events from %d shards in %v (%.1fM events/s)\n",
		total, shards, elapsed.Round(time.Millisecond), float64(total)/elapsed.Seconds()/1e6)
	fmt.Printf("accepted  %d unique events\n", accepted.Load())
	fmt.Printf("dropped   %d duplicates (%.1f%%)\n",
		duplicates.Load(), float64(duplicates.Load())/float64(total)*100)
	fmt.Printf("evicted   %d expired IDs; live set %d\n", evicted.Load(), seen.Len())

	// Sanity: accepted - evicted must equal the live set.
	if got, want := int64(seen.Len()), accepted.Load()-evicted.Load(); got != want {
		fmt.Printf("INVARIANT VIOLATION: live=%d, accepted-evicted=%d\n", got, want)
		return
	}
	if err := seen.Validate(); err != nil {
		fmt.Println("VALIDATION FAILED:", err)
		return
	}
	fmt.Println("dedup set validated: live = accepted - evicted")
}
