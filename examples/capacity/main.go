// Command capacity demonstrates graceful degradation at the arena bound:
// TryInsert surfaces ErrCapacity instead of panicking, the full tree keeps
// serving reads and deletes, Health reports the pressure, and reclamation
// recovers the capacity after frees.
package main

import (
	"errors"
	"fmt"
	"log"

	bst "repro"
)

func main() {
	s := bst.New(bst.WithCapacity(256), bst.WithReclamation())

	// Fill until the arena pushes back.
	var live []int64
	for k := int64(0); ; k++ {
		ok, err := s.TryInsert(k)
		if errors.Is(err, bst.ErrCapacity) {
			fmt.Printf("arena full after %d keys: %v\n", len(live), err)
			break
		}
		if err != nil || !ok {
			log.Fatalf("TryInsert(%d) = (%v, %v)", k, ok, err)
		}
		live = append(live, k)
	}

	// A full tree is not a broken tree.
	fmt.Printf("still serving: Contains(%d)=%v, Len=%d\n", live[0], s.Contains(live[0]), s.Len())
	h := s.Health()
	fmt.Printf("health: allocated=%d recycled=%d backlog=%d stalled=%d\n",
		h.NodesAllocated, h.NodesRecycled, h.RetiredBacklog, h.StalledSlots)

	// Free a quarter; reclamation hands the slots back and inserts resume.
	for _, k := range live[:len(live)/4] {
		s.Delete(k)
	}
	ok, err := s.TryInsert(1 << 40)
	fmt.Printf("after frees: TryInsert = (%v, %v), recycled=%d\n", ok, err, s.Stats().NodesRecycled)
	if err := s.Validate(); err != nil {
		log.Fatal(err)
	}

	// Out-of-range keys error on the Try path instead of panicking.
	if _, err := s.TryInsert(bst.MaxKey + 1); err != nil {
		fmt.Println("out of range:", err)
	}
}
