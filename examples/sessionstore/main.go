// sessionstore: a concurrent session table built on bst.Map — the
// dictionary-with-values extension of the lock-free tree.
//
// Scenario: an API gateway tracks active sessions. Login handlers create
// sessions (PutIfAbsent — the insert's atomicity prevents double-issue of
// one session ID), request handlers look them up and *refresh* them (Put:
// a single-CAS leaf replacement updates the session's lease), and a
// reaper expires stale leases. Because the map is ordered by session ID,
// an operator query like "scan an ID range" falls out of Ascend for free.
package main

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	bst "repro"
	"repro/internal/workload"
)

// session is the value payload; stored immutably per leaf, replaced as a
// whole on refresh (so readers never observe a torn session).
type session struct {
	User      int64
	IssuedAt  int64 // logical ticks
	RenewedAt int64
}

const (
	loginWorkers   = 3
	requestWorkers = 4
	sessionsEach   = 20_000
	leaseTicks     = 50_000
)

func main() {
	store := bst.NewMap[session]()
	var ticks atomic.Int64 // logical clock: one tick per request

	var logins, refreshes, misses, reaped, doubleIssue atomic.Int64
	var loginWg, reqWg sync.WaitGroup
	start := time.Now()

	// Login handlers: issue sessions with unique IDs (hash-scattered).
	for w := 0; w < loginWorkers; w++ {
		loginWg.Add(1)
		go func(w int) {
			defer loginWg.Done()
			rng := workload.NewSplitMix64(uint64(w) + 1)
			for i := 0; i < sessionsEach; i++ {
				id := int64(rng.Next() % (1 << 40))
				now := ticks.Add(1)
				if store.PutIfAbsent(id, session{User: int64(w), IssuedAt: now, RenewedAt: now}) {
					logins.Add(1)
				} else {
					doubleIssue.Add(1) // ID collision: correctly refused
				}
			}
		}(w)
	}

	// Request handlers: replay the login workers' deterministic ID streams
	// so lookups target sessions that (probably) exist, and refresh them.
	stop := make(chan struct{})
	for w := 0; w < requestWorkers; w++ {
		reqWg.Add(1)
		go func(w int) {
			defer reqWg.Done()
			rng := workload.NewSplitMix64(uint64(w%loginWorkers) + 1) // a login stream
			for {
				select {
				case <-stop:
					return
				default:
				}
				id := int64(rng.Next() % (1 << 40))
				now := ticks.Add(1)
				if s, ok := store.Get(id); ok {
					s.RenewedAt = now
					store.Put(id, s) // refresh lease: one CAS
					refreshes.Add(1)
				} else {
					misses.Add(1) // not issued yet (requests run ahead of logins)
				}
			}
		}(w)
	}

	// Wait for logins to finish, then stop the request handlers so the
	// reaper sweeps a quiescent store.
	loginWg.Wait()
	close(stop)
	reqWg.Wait()

	// Reaper: quiescent sweep expiring stale leases (ordered scan).
	now := ticks.Load()
	var stale []int64
	store.Ascend(func(id int64, s session) bool {
		if now-s.RenewedAt > leaseTicks {
			stale = append(stale, id)
		}
		return true
	})
	for _, id := range stale {
		if store.Delete(id) {
			reaped.Add(1)
		}
	}

	elapsed := time.Since(start)
	fmt.Printf("issued   %d sessions (%d ID collisions refused) in %v\n",
		logins.Load(), doubleIssue.Load(), elapsed.Round(time.Millisecond))
	fmt.Printf("served   %d refreshes, %d misses\n", refreshes.Load(), misses.Load())
	fmt.Printf("reaped   %d stale sessions; %d live\n", reaped.Load(), store.Len())

	if got, want := int64(store.Len()), logins.Load()-reaped.Load(); got != want {
		fmt.Printf("INVARIANT VIOLATION: live=%d, issued-reaped=%d\n", got, want)
		return
	}
	if err := store.Validate(); err != nil {
		fmt.Println("VALIDATION FAILED:", err)
		return
	}
	fmt.Println("session store validated: live = issued - reaped")
}
