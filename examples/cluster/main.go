// Command cluster demonstrates the replication layer end to end in one
// process: a leader and a follower (each a durable store + repl node +
// server, exactly what `bstserve -listen-repl` / `-replica-of` runs), a
// client that follows the follower's redirect to land writes on the
// leader, a read-your-writes lookup on the follower via ReadAtLeast, and
// an operator-driven failover — the leader goes away, the follower is
// promoted, and the same client rides through via its seed address.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"os"
	"time"

	"repro/internal/client"
	"repro/internal/durable"
	"repro/internal/repl"
	"repro/internal/server"
	"repro/internal/wal"
)

// node is one cluster member: durable store, replication, data server.
type node struct {
	store *durable.Tree
	repl  *repl.Node
	srv   *server.Server
	addr  string
}

func startNode(dir, replicaOf string) (*node, error) {
	store, err := durable.Open(dir, durable.Options{Sync: wal.SyncFsync})
	if err != nil {
		return nil, err
	}
	// The repl node advertises the data address inside every heartbeat so
	// followers can answer "who leads" in client redirects; reserve the
	// port before the server binds it.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	addr := ln.Addr().String()
	ln.Close()
	rn, err := repl.Start(repl.Config{
		Store:       store,
		Advertise:   addr,
		ListenRepl:  "127.0.0.1:0",
		ReplicaOf:   replicaOf,
		Heartbeat:   20 * time.Millisecond,
		AckEvery:    1,
		AckInterval: 2 * time.Millisecond,
	})
	if err != nil {
		return nil, err
	}
	srv := server.New(server.Config{Store: store, Cluster: rn})
	if err := srv.Start(addr); err != nil {
		return nil, err
	}
	return &node{store: store, repl: rn, srv: srv, addr: addr}, nil
}

func (n *node) stop() {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	n.srv.Shutdown(ctx)
	n.repl.Close()
	n.store.Close()
}

func main() {
	ldir, err := os.MkdirTemp("", "cluster-leader-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(ldir)
	fdir, err := os.MkdirTemp("", "cluster-follower-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(fdir)

	leader, err := startNode(ldir, "")
	if err != nil {
		log.Fatal(err)
	}
	follower, err := startNode(fdir, leader.repl.ReplAddr())
	if err != nil {
		log.Fatal(err)
	}
	defer follower.stop()
	fmt.Printf("leader on %s, follower on %s (repl %s)\n",
		leader.addr, follower.addr, leader.repl.ReplAddr())

	// The client is pointed at the FOLLOWER. Its first mutation bounces
	// with a redirect carrying the leader's address; the client adopts it
	// and lands the write in the same call.
	cl, err := client.Dial(client.Config{Addr: follower.addr, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()
	if ok, err := cl.Insert(ctx, 42); err != nil || !ok {
		log.Fatalf("Insert(42) = (%v, %v)", ok, err)
	}
	fmt.Printf("write via follower redirected to leader %s (%d redirect)\n",
		cl.Leader(), cl.Stats().Redirects)

	// Read-your-writes on the follower: name the leader's WAL horizon and
	// the follower holds the lookup until it has applied that far — the
	// answer can never be staler than the write.
	seq := leader.store.LastSeq()
	ok, err := cl.ReadAtLeast(ctx, 42, seq)
	if err != nil || !ok {
		log.Fatalf("ReadAtLeast(42, %d) = (%v, %v)", seq, ok, err)
	}
	fmt.Printf("follower served the read at seq >= %d: present\n", seq)

	// A one-attempt client shows the raw sentinels crossing the wire.
	oneShot, err := client.Dial(client.Config{Addr: follower.addr, Seed: 2, MaxAttempts: 1})
	if err != nil {
		log.Fatal(err)
	}
	defer oneShot.Close()
	if _, err := oneShot.Insert(ctx, 7); !errors.Is(err, client.ErrNotLeader) {
		log.Fatalf("follower write err = %v, want ErrNotLeader", err)
	}
	if _, err := oneShot.ReadAtLeast(ctx, 42, seq+1000); !errors.Is(err, client.ErrReplLag) {
		log.Fatalf("future-seq read err = %v, want ErrReplLag", err)
	}
	fmt.Println("sentinels survive the wire: ErrNotLeader on follower write, ErrReplLag past the horizon")

	// Failover: the leader vanishes without ceremony; the operator
	// promotes the follower (bstserve exposes this as POST /promote). The
	// client's learned leader stops dialing, so it falls back to its seed
	// address — the follower, now leading — and the write lands there.
	leader.stop()
	term, err := follower.repl.Promote()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("leader gone; follower promoted (term %d)\n", term)
	if ok, err := cl.Insert(ctx, 43); err != nil || !ok {
		log.Fatalf("post-failover Insert(43) = (%v, %v)", ok, err)
	}
	if !follower.store.Contains(42) || !follower.store.Contains(43) {
		log.Fatal("promoted node is missing replicated or post-failover keys")
	}
	fmt.Println("client rode through failover: pre-kill write replicated, post-promote write accepted")
}
