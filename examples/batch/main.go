// Command batch demonstrates the batched operation surface end-to-end:
// the in-process batch API with its per-slot failure model, a batch
// frame over the wire through client.Do, and a pipelined client keeping
// many requests in flight on one connection.
//
// The thing to notice at every layer: a batch is per-op linearizable,
// never atomic. Each operation takes effect individually, a bad key
// fails only its own slot, and no reader anywhere observes a "batch
// boundary".
package main

import (
	"context"
	"errors"
	"fmt"
	"log"

	bst "repro"
	"repro/internal/client"
	"repro/internal/server"
)

func main() {
	// --- In process: one call, one epoch pin, one wavefront seek. ---
	tree := bst.New()
	keys := []int64{40, 10, 30, 20, bst.MaxKey + 1, 10}
	out := make([]bst.OpResult, len(keys))
	tree.InsertBatch(keys, out)
	for i, r := range out {
		switch {
		case errors.Is(r.Err, bst.ErrKeyOutOfRange):
			fmt.Printf("insert %d: out of range (its neighbours still ran)\n", keys[i])
		case r.OK:
			fmt.Printf("insert %d: added\n", keys[i])
		default:
			fmt.Printf("insert %d: already present\n", keys[i])
		}
	}
	if got := tree.Len(); got != 4 {
		log.Fatalf("Len = %d, want 4", got)
	}

	// --- Over the wire: one frame, one admission token, per-op statuses. ---
	srv := server.New(server.Config{Tree: tree})
	if err := srv.Start("127.0.0.1:0"); err != nil {
		log.Fatal(err)
	}
	cl, err := client.Dial(client.Config{Addr: srv.Addr().String(), Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	ops := []client.Op{
		client.LookupOp(20),
		client.DeleteOp(30),
		client.InsertOp(50),
		client.LookupOp(30),
	}
	results, err := cl.Do(ctx, ops)
	if err != nil {
		log.Fatal(err)
	}
	for i, r := range results {
		fmt.Printf("wire op %d (key %d): ok=%v\n", i, ops[i].Key, r.OK)
	}
	if !results[0].OK || !results[1].OK || !results[2].OK || results[3].OK {
		log.Fatalf("unexpected wire batch results: %+v", results)
	}

	// --- Pipelined: many single-op frames in flight on one connection. ---
	p, err := cl.NewPipeline(ctx)
	if err != nil {
		log.Fatal(err)
	}
	var futs []*client.Future
	for k := int64(100); k < 108; k++ {
		f, err := p.Submit(ctx, client.InsertOp(k))
		if err != nil {
			log.Fatal(err)
		}
		futs = append(futs, f)
	}
	for i, f := range futs {
		ok, err := f.Wait(ctx)
		if err != nil || !ok {
			log.Fatalf("pipelined insert %d = (%v, %v)", 100+i, ok, err)
		}
	}
	if err := p.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("pipelined 8 inserts on one connection")

	cl.Close()
	if err := srv.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
	if err := tree.Validate(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("final tree: %d keys, invariants hold\n", tree.Len())
}
