// orderindex: a concurrent ordered index for an in-memory event store.
//
// Scenario (the paper's motivating workload class — ordered data under
// concurrent modification): ingestion goroutines append events keyed by
// timestamp while query goroutines run point lookups and expiry goroutines
// retire old events. An ordered dictionary is exactly what a BST provides
// and what hash maps cannot: after the run we answer "earliest / latest
// event" and time-window queries from the same structure the writers used.
package main

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	bst "repro"
)

const (
	ingesters  = 4
	queriers   = 2
	expirers   = 1
	eventsEach = 25_000
	windowSize = 10_000 // expiry retires events older than this many ticks
)

func main() {
	// Timestamps arrive in ascending order — the degenerate case for an
	// *unbalanced* BST (every insert extends one long right spine, making
	// operations O(n); the paper's evaluation uses uniformly random keys
	// where expected depth is O(log n)). Ordered monotonic keys are
	// exactly what the library's balanced baseline is for: the Bronson
	// et al. relaxed AVL tree keeps the index logarithmic regardless of
	// key order, behind the same Set interface.
	index := bst.New(bst.WithAlgorithm(bst.Bronson))

	var clock atomic.Int64 // logical time: one tick per ingested event
	var ingested, expired, hits, misses atomic.Int64

	start := time.Now()
	var wg sync.WaitGroup

	// Ingesters: each event gets a unique logical timestamp key.
	for w := 0; w < ingesters; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			a := index.NewAccessor()
			for i := 0; i < eventsEach; i++ {
				ts := clock.Add(1)
				if a.Insert(ts) {
					ingested.Add(1)
				}
			}
		}()
	}

	// Expirers: retire everything older than the sliding window.
	done := make(chan struct{})
	for w := 0; w < expirers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			a := index.NewAccessor()
			next := int64(1)
			for {
				select {
				case <-done:
					return
				default:
				}
				horizon := clock.Load() - windowSize
				if next > horizon {
					runtime.Gosched() // nothing old enough yet
					continue
				}
				for next <= horizon {
					if a.Delete(next) {
						expired.Add(1)
					}
					next++
				}
			}
		}()
	}

	// Queriers: point lookups biased to the live window.
	for w := 0; w < queriers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			a := index.NewAccessor()
			x := uint64(seed)
			for {
				select {
				case <-done:
					return
				default:
				}
				now := clock.Load()
				if now == 0 {
					continue
				}
				x = x*6364136223846793005 + 1442695040888963407
				ts := now - int64(x%(windowSize*2))
				if ts < 1 {
					ts = 1
				}
				if a.Contains(ts) {
					hits.Add(1)
				} else {
					misses.Add(1)
				}
			}
		}(int64(w) + 1)
	}

	// Wait for the ingest goroutines to finish, then stop the rest.
	waitIngest := make(chan struct{})
	go func() {
		for clock.Load() < int64(ingesters*eventsEach) {
			time.Sleep(time.Millisecond)
		}
		close(waitIngest)
	}()
	<-waitIngest
	close(done)
	wg.Wait()
	elapsed := time.Since(start)

	// Quiescent ordered queries over the surviving window.
	earliest, _ := index.Min()
	latest, _ := index.Max()
	var inWindow int
	index.AscendRange(latest-windowSize, latest, func(int64) bool { inWindow++; return true })

	fmt.Printf("ingested %d events in %v (%.0f events/s) with %d queriers and %d expirers\n",
		ingested.Load(), elapsed.Round(time.Millisecond),
		float64(ingested.Load())/elapsed.Seconds(), queriers, expirers)
	fmt.Printf("expired  %d events; index now holds %d\n", expired.Load(), index.Len())
	fmt.Printf("query    %d hits / %d misses during ingest\n", hits.Load(), misses.Load())
	fmt.Printf("ordered  earliest=%d latest=%d, %d events in final window\n", earliest, latest, inWindow)

	if err := index.Validate(); err != nil {
		fmt.Println("VALIDATION FAILED:", err)
		return
	}
	fmt.Println("index structure validated")
}
