// orderindex: order-statistics analytics over a concurrent event index.
//
// Scenario (the paper's motivating workload class — ordered data under
// concurrent modification): replaying a day's event log from partitioned
// storage into an in-memory index keyed by timestamp. Partitions
// interleave, so events arrive shuffled even though the timestamps cover
// a dense range — which also happens to be the friendly insertion order
// for an unbalanced external BST (sorted arrival would build a spine).
//
// While ingesters replay, a live dashboard polls window counts with a
// bounded-staleness budget: those queries serve from the cached summary
// and never stall the writers. After the replay settles, the analytics
// pass answers the questions a plain ordered set cannot without an O(n)
// walk — percentiles via Select, "events before t" via Rank — and times
// CountRange against the Scan-and-count it replaces, printing the
// speedup.
package main

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	bst "repro"
)

const (
	ingesters   = 4
	totalEvents = 200_000
	staleBudget = 2048 // dashboard tolerance: answers may lag ≤ this many mutations
	speedupQ    = 200  // timed window-count queries per method
)

func main() {
	index := bst.New(
		bst.WithOrderStatistics(),
		bst.WithReclamation(),
		bst.WithCapacity(1<<20),
	)
	defer index.Close()

	// The replay feed: timestamps 0..N-1, shuffled the way interleaved
	// partition reads scramble them, split across ingester goroutines.
	rng := rand.New(rand.NewSource(1))
	feed := rng.Perm(totalEvents)

	var ingested atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	share := totalEvents / ingesters
	for w := 0; w < ingesters; w++ {
		wg.Add(1)
		go func(part []int) {
			defer wg.Done()
			a := index.NewAccessor()
			defer a.Close()
			for _, ts := range part {
				if a.Insert(int64(ts)) {
					ingested.Add(1)
				}
			}
		}(feed[w*share : (w+1)*share])
	}

	// Live dashboard: window counts during ingest, bounded-stale so each
	// poll reads the cached summary instead of forcing a refresh wave.
	done := make(chan struct{})
	var polls atomic.Int64
	var dash sync.WaitGroup
	dash.Add(1)
	go func() {
		defer dash.Done()
		stale := bst.BoundedStale(staleBudget)
		for {
			select {
			case <-done:
				return
			default:
			}
			if _, err := index.CountRange(0, totalEvents/2, stale); err != nil {
				panic(err)
			}
			polls.Add(1)
		}
	}()

	wg.Wait() // ingesters drain first; the dashboard polls the whole time
	close(done)
	dash.Wait()
	elapsed := time.Since(start)
	fmt.Printf("replayed %d events in %v (%.0f events/s) with %d live dashboard polls alongside\n",
		ingested.Load(), elapsed.Round(time.Millisecond),
		float64(ingested.Load())/elapsed.Seconds(), polls.Load())

	// Quiescent analytics, Exact mode: one refresh wave linearizes the
	// summary against every completed insert, then each answer is O(log n).
	exact := bst.Exact
	n, err := index.CountRange(0, totalEvents, exact)
	must(err)
	median := selectTS(index, n/2)
	p99 := selectTS(index, n*99/100)
	beforeNoon, err := index.Rank(totalEvents/2, exact)
	must(err)
	fmt.Printf("analytics n=%d: median ts=%d, p99 ts=%d, %d events before noon\n",
		n, median, p99, beforeNoon)

	// The headline: window counts via the summary vs the scan they
	// replace, same random windows for both.
	windows := make([][2]int64, speedupQ)
	for i := range windows {
		lo := int64(rng.Intn(totalEvents))
		windows[i] = [2]int64{lo, lo + int64(rng.Intn(totalEvents/4+1))}
	}
	scanStart := time.Now()
	var scanTotal int
	for _, w := range windows {
		index.Scan(w[0], w[1], func(int64) bool { scanTotal++; return true })
	}
	scanD := time.Since(scanStart)
	countStart := time.Now()
	var countTotal int
	for _, w := range windows {
		c, err := index.CountRange(w[0], w[1], exact)
		must(err)
		countTotal += c
	}
	countD := time.Since(countStart)
	if scanTotal != countTotal {
		panic(fmt.Sprintf("scan counted %d events, CountRange %d", scanTotal, countTotal))
	}
	fmt.Printf("window counts ×%d (agreeing on %d events): scan %v, CountRange %v — %.0fx faster\n",
		speedupQ, countTotal, scanD.Round(time.Microsecond), countD.Round(time.Microsecond),
		float64(scanD)/float64(countD))

	// Retention: drop the oldest quarter, then show the next exact
	// aggregate already linearizes against the deletes.
	cutoff := int64(totalEvents / 4)
	a := index.NewAccessor()
	for ts := int64(0); ts < cutoff; ts++ {
		a.Delete(ts)
	}
	a.Close()
	left, err := index.Rank(cutoff, exact)
	must(err)
	total, err := index.CountRange(0, totalEvents, exact)
	must(err)
	fmt.Printf("retention: dropped events below ts=%d; rank(cutoff)=%d, %d remain\n",
		cutoff, left, total)

	if err := index.Validate(); err != nil {
		fmt.Println("VALIDATION FAILED:", err)
		return
	}
	fmt.Println("index structure validated")
}

func selectTS(index *bst.Tree, i int) int64 {
	ts, err := index.Select(i, bst.Exact)
	must(err)
	return ts
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
