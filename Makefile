# Correctness gate for the lock-free BST repro. `make ci` is the full
# tier: formatting, vet, build, the unit suite, a race pass over the
# packages with real concurrency (the arena-backed core, the epoch
# reclamation domain, the public API, the network serving layer, and the
# durability stack), the deterministic serve smoke test (one shed, one
# capacity refusal, one graceful drain, one batch/pipelining stage on a
# real socket), a short batched-operation linearizability round, the
# crash-stress durability gate (kill -9 a durable fsync server mid-load,
# recover, audit every acked mutation, clock a 1M-key recovery), the
# failover-stress replication gate (kill -9 a semi-sync leader mid-load,
# promote the follower, audit every acked mutation on the new leader), a
# fuzz smoke over the wire-frame and WAL-record decoders, the tracing
# overhead gate (flight recorder installed with sampling off must stay
# within 1% of untraced, sampled hot path must not allocate), a short
# durable benchmark cell (BENCH_durable_smoke.json), and the
# order-statistics gates (Exact-mode linearizability bracket checker and
# the CountRange-vs-scan ≥10x speedup floor).

GO ?= go

.PHONY: ci fmt-check vet build test race serve-smoke batch-stress \
	crash-stress failover-stress chaos fuzz-smoke trace-overhead \
	bench-durable-smoke shard-smoke bench-shard-smoke aggregate-stress \
	aggregate-smoke stress clean-data

ci: fmt-check vet build test race serve-smoke batch-stress crash-stress \
	failover-stress chaos fuzz-smoke trace-overhead bench-durable-smoke \
	shard-smoke bench-shard-smoke aggregate-stress aggregate-smoke

fmt-check:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race . ./internal/core ./internal/reclaim ./internal/server \
		./internal/wal ./internal/snapshot ./internal/durable

serve-smoke:
	$(GO) run ./cmd/bstserve -smoke

# Batched ops racing single ops through the Wing & Gong linearizability
# check (per-op windows spanning the whole batched call).
batch-stress:
	@out=$$($(GO) run ./cmd/bststress -batch -targets nm -duration 5s) || { echo "$$out"; exit 1; }; \
	echo "$$out" | tail -1

# The durability gate: SIGKILL a durable fsync server mid-load, recover
# the data dir, verify 100% of acked mutations survived and no ghost keys
# appeared, then clock a 1M-key snapshot + 100k-op WAL tail recovery
# against a hard budget. The log is kept for the CI artifact upload.
crash-stress:
	@$(GO) run ./cmd/bststress -crash -targets nm -duration 1s > crash_round.log 2>&1 \
		|| { cat crash_round.log; exit 1; }; \
	grep "^crash phase" crash_round.log

# The replication gate: seed a 1M-key + 100k-tail data dir, start a
# semi-sync leader and a follower that catches up over the wire, SIGKILL
# the leader mid-load, promote the follower, and audit — every acked
# mutation present on the new leader, zero ghost keys, recovery to
# serving inside the budget. The log is kept for the CI artifact upload.
failover-stress:
	@$(GO) run ./cmd/bststress -failover -targets nm -duration 1s > failover_round.log 2>&1 \
		|| { cat failover_round.log; exit 1; }; \
	grep "^failover:" failover_round.log

# The self-healing gate: a 3-node auto-failover cluster whose every link
# runs through a fault-injecting TCP proxy. The scripted round partitions
# the leader away (the highest-priority follower self-promotes on lease
# expiry, the healed ex-leader is term-fenced and rejoins as a follower),
# then SIGKILLs the successor (the last node promotes), auditing 100% of
# acked mutations, zero ghosts, and exactly one leader per term
# throughout. CHAOS_SEED pins the fault schedule for CI determinism;
# CHAOS_SEEDS>1 switches to that many randomized seeds (nightly mode).
# The log is kept for the CI artifact upload.
CHAOS_SEED ?= 1
CHAOS_SEEDS ?= 1
chaos:
	@rm -f chaos_round.log; i=0; \
	while [ $$i -lt $(CHAOS_SEEDS) ]; do \
		if [ $(CHAOS_SEEDS) -gt 1 ]; then \
			seed=$$(od -An -N4 -tu4 /dev/urandom | tr -d ' '); \
		else \
			seed=$(CHAOS_SEED); \
		fi; \
		echo "== chaos round seed $$seed ==" >> chaos_round.log; \
		$(GO) run ./cmd/bststress -chaos -chaos-seed $$seed -targets nm -duration 1s \
			>> chaos_round.log 2>&1 || { cat chaos_round.log; exit 1; }; \
		i=$$((i+1)); \
	done; \
	grep "^chaos: OK" chaos_round.log

# Short fuzz budgets over every frame/record decoder; seed corpora are
# checked in under testdata/fuzz. Run `go test -fuzz <name> ./internal/...`
# for a real session.
fuzz-smoke:
	$(GO) test ./internal/wire -run '^$$' -fuzz '^FuzzDecodeRequest$$' -fuzztime 10s
	$(GO) test ./internal/wire -run '^$$' -fuzz '^FuzzDecodeResponse$$' -fuzztime 10s
	$(GO) test ./internal/wire -run '^$$' -fuzz '^FuzzDecodeBatchOps$$' -fuzztime 5s
	$(GO) test ./internal/wire -run '^$$' -fuzz '^FuzzDecodeBatchResponse$$' -fuzztime 5s
	$(GO) test ./internal/wire -run '^$$' -fuzz '^FuzzReadFrame$$' -fuzztime 5s
	$(GO) test ./internal/wire -run '^$$' -fuzz '^FuzzDecodeReplSubscribe$$' -fuzztime 5s
	$(GO) test ./internal/wire -run '^$$' -fuzz '^FuzzDecodeReplFrames$$' -fuzztime 5s
	$(GO) test ./internal/wire -run '^$$' -fuzz '^FuzzDecodeReplAck$$' -fuzztime 5s
	$(GO) test ./internal/wire -run '^$$' -fuzz '^FuzzDecodeReplSnapshot$$' -fuzztime 5s
	$(GO) test ./internal/wire -run '^$$' -fuzz '^FuzzDecodeReplStatus$$' -fuzztime 5s
	$(GO) test ./internal/wire -run '^$$' -fuzz '^FuzzDecodeAggregate$$' -fuzztime 5s
	$(GO) test ./internal/wire -run '^$$' -fuzz '^FuzzDecodeAggregateResponse$$' -fuzztime 5s
	$(GO) test ./internal/wal -run '^$$' -fuzz '^FuzzRecordDecode$$' -fuzztime 10s

# The tracing overhead gate, both halves: with a recorder installed but
# sampling off, a fig4 smoke cell must hold ≥99% of untraced throughput
# (interleaved A/B pairs, medians, escalating retries for noisy hosts);
# and the sampled hot path — request root, child spans, ring flush, phase
# fold — must run with zero heap allocations.
trace-overhead:
	BST_TRACE_OVERHEAD=1 $(GO) test ./internal/rtrace \
		-run '^(TestTraceOverheadGate|TestSampledPathAllocs)$$' -count=1 -v

# One small durable-overhead table (in-memory vs none/interval/fsync);
# the JSON lands in BENCH_durable_smoke.json for the CI artifact upload.
bench-durable-smoke:
	$(GO) run ./cmd/bstbench -durable -keyranges 10000 -workloads write-dominated \
		-threads 2,8 -duration 200ms -json BENCH_durable_smoke.json

# The sharded-forest gate: a race pass over the shard routing, forest
# batch fan-out, merged scans, and the per-lane WAL/snapshot/recovery
# paths, plus a 4-shard crash round (SIGKILL mid-load, parallel lane
# replay, 100% acked-mutation audit, ghost-key scan).
shard-smoke:
	$(GO) test -race -run 'Shard|Forest' . ./internal/forest ./internal/durable
	@$(GO) run ./cmd/bststress -crash -crash-shards 4 -targets nm -duration 1s > shard_crash_round.log 2>&1 \
		|| { cat shard_crash_round.log; exit 1; }; \
	grep "^crash phase" shard_crash_round.log

# One small shards=1-vs-8 scaling table on the mixed workload; the JSON
# lands in BENCH_shard_smoke.json for the CI artifact upload. No speedup
# assertion here: shard scaling needs real cores, and CI runners vary —
# EXPERIMENTS.md records measured numbers from a pinned host.
bench-shard-smoke:
	$(GO) run ./cmd/bstbench -shards 1,8 -keyranges 100000 -workloads mixed \
		-threads 2,8 -duration 200ms -json BENCH_shard_smoke.json

# The order-statistics linearizability gate: Exact-mode Rank/CountRange
# bracket-checked against concurrent inserts and deletes on the indexed
# single tree and the sharded forest, plus a quiescent scan-equality
# audit (bststress -aggregate rounds).
aggregate-stress:
	@out=$$($(GO) run ./cmd/bststress -aggregate -targets nm -duration 5s) || { echo "$$out"; exit 1; }; \
	echo "$$out" | tail -1

# The order-statistics speedup gate: over 1M keys, CountRange through the
# lazily refreshed summary must beat counting a Scan by ≥10x (measured
# headroom is orders of magnitude — the floor only catches a broken
# summary path silently degrading to the scan). The JSON lands in
# BENCH_aggregate_smoke.json for the CI artifact upload.
aggregate-smoke:
	@out=$$($(GO) run ./cmd/bstbench -aggregate -keyranges 1000000 -duration 200ms \
		-agg-min-speedup 10 -json BENCH_aggregate_smoke.json) || { echo "$$out"; exit 1; }; \
	echo "$$out" | tail -1

# Longer soak, including the capacity exhaust/recover round and the
# network serving soak (not part of ci).
stress:
	$(GO) run -race ./cmd/bststress -duration 2m -exhaust -serve -batch -crash -failover

# Remove local artifacts: benchmark/crash logs and any stray durable data
# dirs left by interrupted runs (bstserve -data dirs are never touched —
# only the well-known temp prefixes used by the tools here).
clean-data:
	rm -f BENCH_durable_smoke.json BENCH_shard_smoke.json \
		BENCH_aggregate_smoke.json crash_round.log \
		failover_round.log chaos_round.log shard_crash_round.log
	rm -rf $${TMPDIR:-/tmp}/bst-crash-data-* $${TMPDIR:-/tmp}/bst-crash-addr-* \
		$${TMPDIR:-/tmp}/bst-crash-clock-* $${TMPDIR:-/tmp}/bstbench-durable-* \
		$${TMPDIR:-/tmp}/bst-failover-leader-* $${TMPDIR:-/tmp}/bst-failover-follower-* \
		$${TMPDIR:-/tmp}/bst-failover-addr-* $${TMPDIR:-/tmp}/bst-chaos-node-*
