# Correctness gate for the lock-free BST repro. `make ci` is the full
# tier: formatting, vet, build, the unit suite, a race pass over the
# packages with real concurrency (the arena-backed core, the epoch
# reclamation domain, the public API, and the network serving layer), the
# deterministic serve smoke test (one shed, one capacity refusal, one
# graceful drain, one batch/pipelining stage on a real socket), and a
# short batched-operation linearizability round.

GO ?= go

.PHONY: ci fmt-check vet build test race serve-smoke batch-stress stress

ci: fmt-check vet build test race serve-smoke batch-stress

fmt-check:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race . ./internal/core ./internal/reclaim ./internal/server

serve-smoke:
	$(GO) run ./cmd/bstserve -smoke

# Batched ops racing single ops through the Wing & Gong linearizability
# check (per-op windows spanning the whole batched call).
batch-stress:
	@out=$$($(GO) run ./cmd/bststress -batch -targets nm -duration 5s) || { echo "$$out"; exit 1; }; \
	echo "$$out" | tail -1

# Longer soak, including the capacity exhaust/recover round and the
# network serving soak (not part of ci).
stress:
	$(GO) run -race ./cmd/bststress -duration 2m -exhaust -serve -batch
