# Correctness gate for the lock-free BST repro. `make ci` is the full
# tier: formatting, vet, build, the unit suite, and a short race pass over
# the packages with real concurrency (the arena-backed core and the epoch
# reclamation domain).

GO ?= go

.PHONY: ci fmt-check vet build test race stress

ci: fmt-check vet build test race

fmt-check:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/core ./internal/reclaim

# Longer soak, including the capacity exhaust/recover round (not part of ci).
stress:
	$(GO) run -race ./cmd/bststress -duration 2m -exhaust
