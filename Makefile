# Correctness gate for the lock-free BST repro. `make ci` is the full
# tier: formatting, vet, build, the unit suite, a race pass over the
# packages with real concurrency (the arena-backed core, the epoch
# reclamation domain, the public API, and the network serving layer), and
# the deterministic serve smoke test (one shed, one capacity refusal, one
# graceful drain on a real socket).

GO ?= go

.PHONY: ci fmt-check vet build test race serve-smoke stress

ci: fmt-check vet build test race serve-smoke

fmt-check:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race . ./internal/core ./internal/reclaim ./internal/server

serve-smoke:
	$(GO) run ./cmd/bstserve -smoke

# Longer soak, including the capacity exhaust/recover round and the
# network serving soak (not part of ci).
stress:
	$(GO) run -race ./cmd/bststress -duration 2m -exhaust -serve
