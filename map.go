package bst

import (
	"fmt"

	"repro/internal/keys"
	"repro/internal/nmboxed"
)

// Map is a concurrent ordered map from int64 keys to values of type V,
// built on the lock-free Natarajan–Mittal tree (boxed variant: values
// ride on leaves and the garbage collector reclaims removed nodes).
//
// Semantics extend the paper's dictionary minimally and safely: a value
// is immutable for the lifetime of its leaf, and Put replaces the whole
// leaf with a single CAS — which preserves every invariant the paper's
// linearizability proof relies on (node keys never change, marked edges
// are never modified). All methods are safe for concurrent use.
type Map[V any] struct {
	t *nmboxed.Tree
}

// NewMap creates an empty concurrent ordered map.
func NewMap[V any]() *Map[V] {
	return &Map[V]{t: nmboxed.New()}
}

// Get returns the value stored at key.
func (m *Map[V]) Get(key int64) (val V, ok bool) {
	v, ok := m.t.GetKV(mapKey(key))
	if !ok {
		var zero V
		return zero, false
	}
	return v.(V), true
}

// Put sets key's value, returning true if a previous value was replaced
// and false if the key was newly inserted. Linearizes at a single CAS.
func (m *Map[V]) Put(key int64, val V) (replaced bool) {
	return m.t.Upsert(mapKey(key), val)
}

// TryPut is the non-panicking variant of Put: keys above MaxKey return
// ErrKeyOutOfRange instead of panicking. The boxed tree backing Map has no
// allocation bound, so TryPut never returns ErrCapacity; the signature
// still reserves the error path so callers can treat Tree and Map
// uniformly (errors.Is against ErrCapacity simply never fires).
func (m *Map[V]) TryPut(key int64, val V) (replaced bool, err error) {
	u, err := tryMapKey(key)
	if err != nil {
		return false, err
	}
	return m.t.Upsert(u, val), nil
}

// PutIfAbsent stores val only if key is not present; it reports whether
// the map changed.
func (m *Map[V]) PutIfAbsent(key int64, val V) bool {
	return m.t.InsertKV(mapKey(key), val)
}

// Delete removes key; it reports whether the map changed.
func (m *Map[V]) Delete(key int64) bool { return m.t.Delete(mapKey(key)) }

// Contains reports whether key is present.
func (m *Map[V]) Contains(key int64) bool { return m.t.Search(mapKey(key)) }

// Len returns the number of entries (quiescent only).
func (m *Map[V]) Len() int { return m.t.Size() }

// Ascend visits entries in ascending key order until yield returns false
// (quiescent only).
func (m *Map[V]) Ascend(yield func(key int64, val V) bool) {
	m.t.Items(func(u uint64, v any) bool {
		return yield(keys.Unmap(u), v.(V))
	})
}

// ContainsBatch reports, in out[i], whether keys[i] is present, with the
// batch contract of Tree.ContainsBatch: per-op linearizability, no
// snapshot semantics, out-of-range keys report ErrKeyOutOfRange instead
// of panicking. The boxed tree backing Map has no shared-descent batch
// path, so this is a convenience loop, not a performance feature.
func (m *Map[V]) ContainsBatch(keys []int64, out []OpResult) {
	runBatchSlow(m.t, lookupKind, keys, out)
}

// DeleteBatch removes every key; out[i].OK reports whether the map
// changed. See ContainsBatch for the batch contract.
func (m *Map[V]) DeleteBatch(keys []int64, out []OpResult) {
	runBatchSlow(m.t, deleteKind, keys, out)
}

// PutBatch sets keys[i]'s value to vals[i] for every i; out[i].OK reports
// whether a previous value was replaced (Put semantics, one CAS per
// entry). len(vals) and len(out) must equal len(keys). Out-of-range keys
// report ErrKeyOutOfRange in their slot without aborting the batch.
func (m *Map[V]) PutBatch(ks []int64, vals []V, out []OpResult) {
	if len(vals) != len(ks) || len(out) != len(ks) {
		panic("bst: PutBatch length mismatch")
	}
	for i, k := range ks {
		if !keys.InRange(k) {
			out[i] = OpResult{Err: fmt.Errorf("%w: %d > %d", ErrKeyOutOfRange, k, MaxKey)}
			continue
		}
		out[i] = OpResult{OK: m.t.Upsert(keys.Map(k), vals[i])}
	}
}

// Validate checks the backing tree's structural invariants (quiescent).
func (m *Map[V]) Validate() error { return m.t.Audit() }
