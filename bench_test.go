// Benchmarks regenerating every table and figure of "Fast Concurrent
// Lock-Free Binary Search Trees" (Natarajan & Mittal, PPoPP 2014), plus
// the ablations called out in DESIGN.md.
//
//	BenchmarkFig4Grid     — Figure 4's 4×3 grid (key range × workload) at a
//	                        fixed goroutine count; full thread sweeps are
//	                        cmd/bstbench's job.
//	BenchmarkFig4Scaling  — Figure 4's x-axis: thread scaling on the
//	                        highest-contention cell (1K keys, write-heavy).
//	BenchmarkTable1       — Table 1's per-operation costs: allocs/op is
//	                        reported directly by the Go benchmark runner.
//	BenchmarkAblation*    — packed-vs-boxed encoding, reclamation on/off,
//	                        uniform-vs-Zipf keys.
//	BenchmarkSearchOnly   — §5's external-vs-internal path-length effect.
//
// Throughput comparisons should read ns/op inverted: lower ns/op = higher
// ops/s. Each parallel benchmark pins its goroutine count via
// b.SetParallelism (GOMAXPROCS is 1 on the reproduction host).
package bst_test

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"

	bst "repro"
	"repro/internal/harness"
	"repro/internal/keys"
	"repro/internal/workload"
)

// benchCell runs a harness cell under the Go benchmark runner: the set is
// built and prefilled outside the timer, then b.N operations are spread
// over `goroutines` workers.
func benchCell(b *testing.B, target harness.Target, keyRange int64, mix workload.Mix, goroutines int, cfgMut func(*harness.Config)) {
	b.Helper()
	cfg := harness.Config{
		Threads:       goroutines,
		KeyRange:      keyRange,
		Mix:           mix,
		Seed:          42,
		Prefill:       true,
		ArenaCapacity: 1 << 26,
	}
	if cfgMut != nil {
		cfgMut(&cfg)
	}
	inst := target.New(cfg)
	harness.Prefill(inst, cfg)

	gomax := runtime.GOMAXPROCS(0)
	par := goroutines / gomax
	if par < 1 {
		par = 1
	}
	b.SetParallelism(par)

	var workerID atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		id := workerID.Add(1)
		acc := inst.NewAccessor()
		gen := workload.NewGenerator(mix, keyRange, cfg.Seed+id*0x9e3779b9)
		for pb.Next() {
			op, k := gen.Next()
			u := keys.Map(k)
			switch op {
			case workload.OpSearch:
				acc.Search(u)
			case workload.OpInsert:
				acc.Insert(u)
			default:
				acc.Delete(u)
			}
		}
	})
}

// BenchmarkFig4Grid is Figure 4 at a fixed mid-range goroutine count: one
// sub-benchmark per graph per algorithm. Who wins each cell — and how the
// winner changes as the tree grows and reads dominate — is the figure's
// main result.
func BenchmarkFig4Grid(b *testing.B) {
	const goroutines = 8
	for _, keyRange := range []int64{1_000, 10_000, 100_000, 1_000_000} {
		for _, mix := range workload.Mixes {
			for _, target := range harness.PaperTargets() {
				name := fmt.Sprintf("range=%d/%s/%s", keyRange, mix.Name, target.Name)
				b.Run(name, func(b *testing.B) {
					benchCell(b, target, keyRange, mix, goroutines, nil)
				})
			}
		}
	}
}

// BenchmarkFig4Scaling is the x-axis of Figure 4's highest-contention
// graph (1K keys, write-dominated): throughput as goroutines increase.
func BenchmarkFig4Scaling(b *testing.B) {
	for _, goroutines := range []int{1, 4, 16, 64} {
		for _, target := range harness.PaperTargets() {
			name := fmt.Sprintf("threads=%d/%s", goroutines, target.Name)
			b.Run(name, func(b *testing.B) {
				benchCell(b, target, 1_000, workload.WriteDominated, goroutines, nil)
			})
		}
	}
}

// BenchmarkTable1 measures uncontended single-operation cost per
// algorithm. allocs/op corresponds to Table 1's "objects allocated"
// column (plus Go-specific boxing, discussed in EXPERIMENTS.md); ns/op
// tracks the atomic-instruction gap.
func BenchmarkTable1(b *testing.B) {
	algos := []struct {
		name string
		alg  bst.Algorithm
	}{
		{"efrb", bst.EllenEtAl},
		{"hj", bst.HowleyJones},
		{"nm", bst.NatarajanMittal},
	}
	for _, a := range algos {
		b.Run("insert/"+a.name, func(b *testing.B) {
			s := bst.New(bst.WithAlgorithm(a.alg), bst.WithCapacity(1<<27))
			acc := s.NewAccessor()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				acc.Insert(scrambled(i))
			}
		})
		b.Run("delete/"+a.name, func(b *testing.B) {
			s := bst.New(bst.WithAlgorithm(a.alg), bst.WithCapacity(1<<27))
			acc := s.NewAccessor()
			for i := 0; i < b.N; i++ {
				acc.Insert(scrambled(i))
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				acc.Delete(scrambled(i))
			}
		})
	}
}

// scrambled spreads sequential ids uniformly (bijective), avoiding the
// degenerate sorted-input case of unbalanced BSTs.
func scrambled(i int) int64 {
	k := int64(uint64(i) * 0x9E3779B97F4A7C15)
	if k > bst.MaxKey {
		k -= 4
	}
	return k
}

// BenchmarkAblationEncoding: the packed-arena child word (paper-faithful
// CAS+BTS) versus the GC-friendly boxed edge records, same algorithm.
func BenchmarkAblationEncoding(b *testing.B) {
	for _, name := range []string{harness.TargetNM, harness.TargetNMBoxed} {
		target, _ := harness.TargetByName(name)
		b.Run(name, func(b *testing.B) {
			benchCell(b, target, 10_000, workload.WriteDominated, 8, nil)
		})
	}
}

// BenchmarkAblationReclaim: epoch-based node recycling on vs off (the
// paper benchmarks with reclamation disabled).
func BenchmarkAblationReclaim(b *testing.B) {
	target, _ := harness.TargetByName(harness.TargetNM)
	for _, reclaim := range []bool{false, true} {
		b.Run(fmt.Sprintf("reclaim=%v", reclaim), func(b *testing.B) {
			benchCell(b, target, 10_000, workload.WriteDominated, 8, func(c *harness.Config) {
				c.Reclaim = reclaim
			})
		})
	}
}

// BenchmarkAblationCASOnly: true BTS (atomic Or) versus the paper's
// CAS-only fallback for tagging sibling edges.
func BenchmarkAblationCASOnly(b *testing.B) {
	target, _ := harness.TargetByName(harness.TargetNM)
	for _, casOnly := range []bool{false, true} {
		name := "bts"
		if casOnly {
			name = "cas-loop"
		}
		b.Run(name, func(b *testing.B) {
			benchCell(b, target, 10_000, workload.WriteDominated, 8, func(c *harness.Config) {
				c.CASOnly = casOnly
			})
		})
	}
}

// BenchmarkAblationZipf: uniform versus skewed key popularity — skew
// concentrates contention on a few hot paths.
func BenchmarkAblationZipf(b *testing.B) {
	target, _ := harness.TargetByName(harness.TargetNM)
	for _, s := range []float64{0, 1.2, 2.0} {
		name := "uniform"
		if s > 0 {
			name = fmt.Sprintf("zipf=%.1f", s)
		}
		b.Run(name, func(b *testing.B) {
			cfg := harness.Config{
				Threads: 8, KeyRange: 100_000, Mix: workload.WriteDominated,
				Seed: 42, Prefill: true, ArenaCapacity: 1 << 26, ZipfS: s,
			}
			inst := target.New(cfg)
			harness.Prefill(inst, cfg)
			var workerID atomic.Uint64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				id := workerID.Add(1)
				acc := inst.NewAccessor()
				var gen *workload.Generator
				if s > 1 {
					gen = workload.NewZipfGenerator(cfg.Mix, cfg.KeyRange, cfg.Seed+id, s)
				} else {
					gen = workload.NewGenerator(cfg.Mix, cfg.KeyRange, cfg.Seed+id)
				}
				for pb.Next() {
					op, k := gen.Next()
					u := keys.Map(k)
					switch op {
					case workload.OpSearch:
						acc.Search(u)
					case workload.OpInsert:
						acc.Insert(u)
					default:
						acc.Delete(u)
					}
				}
			})
		})
	}
}

// BenchmarkExtensionKAry compares the future-work k-ary tree against the
// binary NM tree: higher fan-out shortens search paths (fewer pointer
// hops, better locality) at the price of copying multi-key leaves on
// every update.
func BenchmarkExtensionKAry(b *testing.B) {
	for _, mix := range []workload.Mix{workload.ReadDominated, workload.WriteDominated} {
		for _, name := range []string{harness.TargetNM, harness.TargetKST4, harness.TargetKST16} {
			target, _ := harness.TargetByName(name)
			b.Run(mix.Name+"/"+name, func(b *testing.B) {
				benchCell(b, target, 100_000, mix, 4, nil)
			})
		}
	}
}

// BenchmarkExtensionMap measures the dictionary-with-values extension:
// fresh inserts, hits, and single-CAS value replacements.
func BenchmarkExtensionMap(b *testing.B) {
	b.Run("put-fresh", func(b *testing.B) {
		m := bst.NewMap[int]()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.Put(scrambled(i), i)
		}
	})
	b.Run("get-hit", func(b *testing.B) {
		m := bst.NewMap[int]()
		const n = 1 << 16
		for i := 0; i < n; i++ {
			m.Put(scrambled(i), i)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.Get(scrambled(i % n))
		}
	})
	b.Run("put-replace", func(b *testing.B) {
		m := bst.NewMap[int]()
		const n = 1 << 16
		for i := 0; i < n; i++ {
			m.Put(scrambled(i), i)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.Put(scrambled(i%n), i)
		}
	})
}

// BenchmarkSearchOnly isolates §5's representation trade-off: the
// external NM tree always walks to a leaf, the internal HJ tree can stop
// early, and the balanced BCCO tree has the shortest worst-case paths.
func BenchmarkSearchOnly(b *testing.B) {
	searchMix := workload.Mix{Name: "search-only", Search: 100}
	for _, name := range []string{harness.TargetNM, harness.TargetHJ, harness.TargetBCCO, harness.TargetEFRB} {
		target, _ := harness.TargetByName(name)
		b.Run(name, func(b *testing.B) {
			benchCell(b, target, 100_000, searchMix, 4, nil)
		})
	}
}

// BenchmarkBatchAmortization — DESIGN §9: the accessor's batched entry
// points against the equivalent single-op loop, per batch size. Each
// round churns `size` inserts, `size` deletes of the oldest live keys and
// `size` lookups against a ~500K-key working set, so ns/op compares
// directly across columns and allocs/op exposes any per-batch allocation
// (the steady-state batch path must not allocate).
//
// Expect the batch columns to trail batch=1 here: in a tight
// steady-state loop the CPU already overlaps the cache misses of
// consecutive *independent single* ops across iterations, so batching
// buys no extra memory-level parallelism and its sort/grouping
// bookkeeping shows up as pure overhead. The win appears when ops
// arrive with work between them — frame decoding, workload generation —
// which is what `bstbench -batch` measures (DESIGN §9).
func BenchmarkBatchAmortization(b *testing.B) {
	for _, size := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("batch=%d", size), func(b *testing.B) {
			tr := bst.New(bst.WithCapacity(1 << 23))
			acc := tr.NewAccessor()
			const prefill = 500_000
			for i := 0; i < prefill; i++ {
				acc.Insert(scrambled(i))
			}
			ins := make([]int64, size)
			del := make([]int64, size)
			look := make([]int64, size)
			out := make([]bst.OpResult, size)
			next, oldest := prefill, 0
			b.ReportAllocs()
			b.ResetTimer()
			for n := 0; n < b.N; n += 3 * size {
				for j := 0; j < size; j++ {
					ins[j] = scrambled(next)
					del[j] = scrambled(oldest)
					look[j] = scrambled(oldest + (j*7919)%prefill)
					next, oldest = next+1, oldest+1
				}
				if size == 1 {
					acc.Insert(ins[0])
					acc.Delete(del[0])
					acc.Contains(look[0])
				} else {
					acc.InsertBatch(ins, out)
					acc.DeleteBatch(del, out)
					acc.ContainsBatch(look, out)
				}
			}
		})
	}
}
